/// @file registry.cpp
/// @brief Algorithm registry and selection: per-family tables (single-tier
/// algorithms plus the leader-based hierarchical composition), the two-tier
/// cost-model automatic choice, and the two override channels (the
/// XMPI_ALG_<FAMILY> environment variables and the XMPI_T_alg_* control
/// calls, the latter taking precedence so harnesses can pin algorithms
/// programmatically).
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>

#include "../env.hpp"
#include "../progress.hpp"
#include "../shm/shm.hpp"
#include "../topo/topo.hpp"
#include "../tune/tune.hpp"
#include "algorithms.hpp"

namespace xmpi::detail::alg {
namespace {

/// Adapts a single-tier bench::model cost formula to the registry signature.
/// Single-tier algorithms are always priced with the inter-node machine —
/// exactly the PR-2 pricing — so their relative order (and therefore
/// selection on any non-hierarchical topology) is unchanged by the topology
/// subsystem.
template <double (*F)(bench::model::Machine const&, double, double)>
double adapt(bench::model::TwoTier const& t, bench::model::NodeShape const&, double p,
             double bytes) {
    return F(t.inter, p, bytes);
}

std::vector<AlgInfo> const& table(Family f) {
    // Index 0 is always the flat reference of each family (the PR-1
    // behavior); the hierarchical composition is always last.
    // Star-shaped flat entries are priced with the *_flat_select variants:
    // the tape-exact star forms (a star root's messages overlap in flight)
    // would make "flat" nearly free in virtual time and displace the
    // logarithmic algorithms everywhere, so selection charges the root's
    // egress serialization on top. The bench/sim divergence tables use the
    // tape-exact forms.
    static std::vector<AlgInfo> const bcast_t = {
        {"flat", false, false, false, adapt<bench::model::bcast_flat_select>},
        {"binomial", false, false, false, adapt<bench::model::bcast_binomial>},
        {"ring", false, false, false, adapt<bench::model::bcast_ring_pipelined>},
        {"hierarchical", false, false, false, nullptr, true},
    };
    static std::vector<AlgInfo> const reduce_t = {
        {"flat", false, false, false, adapt<bench::model::reduce_flat_select>},
        {"binomial", false, false, false, adapt<bench::model::reduce_binomial>},
        {"hierarchical", false, false, false, nullptr, true},
    };
    static std::vector<AlgInfo> const allgather_t = {
        {"flat", false, false, false, adapt<bench::model::allgather_flat_select>},
        {"rdoubling", true, false, false, adapt<bench::model::allgather_rdoubling>},
        {"ring", false, false, false, adapt<bench::model::allgather_ring>},
        {"hierarchical", false, false, false, nullptr, true},
    };
    static std::vector<AlgInfo> const allreduce_t = {
        {"flat", false, false, false, adapt<bench::model::allreduce_flat_select>},
        {"binomial", false, false, false, adapt<bench::model::allreduce_binomial>},
        {"rdoubling", true, false, false, adapt<bench::model::allreduce_rdoubling>},
        // Recursive halving pairs ranks at distance p/2 first, so an
        // element combines as e.g. (v0 op v2) op (v1 op v3) — an interleave,
        // not a rank-order bracketing: commutative ops only.
        {"rabenseifner", true, true, true, adapt<bench::model::allreduce_rabenseifner>},
        {"ring", false, true, true, adapt<bench::model::allreduce_ring>},
        {"hierarchical", false, false, false, nullptr, true},
    };
    static std::vector<AlgInfo> const alltoall_t = {
        {"flat", false, false, false, adapt<bench::model::alltoall_flat>},
        {"bruck", false, false, false, adapt<bench::model::alltoall_bruck>},
        {"hierarchical", false, false, false, nullptr, true},
    };
    switch (f) {
        case Family::bcast: return bcast_t;
        case Family::reduce: return reduce_t;
        case Family::allgather: return allgather_t;
        case Family::allreduce: return allreduce_t;
        case Family::alltoall: return alltoall_t;
    }
    return bcast_t;  // unreachable
}

char const* const kFamilyNames[kFamilies] = {"bcast", "reduce", "allgather", "allreduce",
                                             "alltoall"};
char const* const kEnvNames[kFamilies] = {"XMPI_ALG_BCAST", "XMPI_ALG_REDUCE",
                                          "XMPI_ALG_ALLGATHER", "XMPI_ALG_ALLREDUCE",
                                          "XMPI_ALG_ALLTOALL"};

/// Control-API forced algorithm index per family; -1 means automatic.
std::atomic<int> g_forced[kFamilies] = {-1, -1, -1, -1, -1};

/// Index the calling process most recently selected per family (-1 before
/// the first invocation); reported by XMPI_T_alg_selected.
std::atomic<int> g_selected[kFamilies] = {-1, -1, -1, -1, -1};

/// Cached XMPI_ALG_* resolution per family (-2 = not yet resolved, -1 =
/// unset or unknown name). The environment cannot change meaningfully
/// mid-process (the CI matrix sets it at launch), so the hot path pays no
/// environ scan per collective call.
std::atomic<int> g_env_cache[kFamilies] = {-2, -2, -2, -2, -2};

bool iequals(char const* a, char const* b) {
    for (; *a != '\0' && *b != '\0'; ++a, ++b) {
        if (std::tolower(static_cast<unsigned char>(*a)) !=
            std::tolower(static_cast<unsigned char>(*b)))
            return false;
    }
    return *a == '\0' && *b == '\0';
}

int family_index(char const* name) {
    if (name == nullptr) return -1;
    for (int i = 0; i < kFamilies; ++i) {
        if (iequals(name, kFamilyNames[i])) return i;
    }
    return -1;
}

int name_index(std::vector<AlgInfo> const& t, char const* name) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (iequals(name, t[i].name)) return static_cast<int>(i);
    }
    return -1;
}

bool is_pow2(int p) { return (p & (p - 1)) == 0; }

/// Per-entry operation/shape validity shared by select() and select_flat()
/// (select() layers the topology-dependent hierarchical checks on top).
bool flags_valid(AlgInfo const& a, int p, bool commutative, bool elementwise) {
    if (a.needs_pow2 && !is_pow2(p)) return false;
    if (a.needs_commutative && !commutative) return false;
    if (a.needs_elementwise && !elementwise) return false;
    return true;
}

std::string joined_names(std::vector<AlgInfo> const& t) {
    std::string out;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ", ";
        out += t[i].name;
    }
    return out;
}

/// Resolves XMPI_ALG_<FAMILY> once, emitting a one-time stderr warning that
/// names the valid choices when the variable holds an unknown name (silent
/// fallback used to make such typos indistinguishable from a deliberate
/// "auto"). The same serialize-and-warn-once discipline covers the tuning
/// knobs (XMPI_SEGMENT_BYTES, XMPI_SCHED_CACHE) below.
std::mutex g_env_mutex;

// ---------------------------------------------------------------------------
// Tuning knobs: pipeline segment size and schedule-cache switch.
// Resolution order is control call > environment > built-in default, with
// the environment parsed once per process (re-armed by
// XMPI_T_alg_env_refresh). Invalid values warn once on stderr and fall back
// — a zero/garbage segment size must never reach a builder.
// ---------------------------------------------------------------------------

/// Epoch of the schedule-affecting controls; cached schedules are stamped
/// with it and dropped when it moves.
std::atomic<std::uint64_t> g_sched_epoch{1};

// Resolved env values, written under g_env_mutex but read lock-free on the
// collective hot path — hence atomics (relaxed suffices: each is an
// independent flag and is stored exactly once per resolution, never through
// a transient intermediate).
std::atomic<bool> g_tuning_resolved{false};
std::atomic<long long> g_env_segment_bytes{0};  ///< 0 = unset/invalid
std::atomic<int> g_env_sched_cache{-1};         ///< -1 = unset/invalid

std::atomic<long long> g_forced_segment{0};  ///< control pin; 0 = automatic
std::atomic<int> g_forced_cache{-1};         ///< control pin; -1 = automatic

/// XMPI_HIER_FIT switch for the measured hierarchical correction ratios
/// below (1 = apply, 0 = raw closed-form costs; default on). Resolved with
/// the tuning environment, re-armed by XMPI_T_alg_env_refresh.
std::atomic<int> g_env_hier_fit{1};

/// Pushes the effective segment override (control > env > none) into the
/// shared model hook so builders and cost formulas segment identically.
void publish_segment_override() {
    double v = 0.0;
    if (long long const forced = g_forced_segment.load(std::memory_order_relaxed); forced > 0) {
        v = static_cast<double>(forced);
    } else if (long long const env = g_env_segment_bytes.load(std::memory_order_relaxed);
               env > 0) {
        v = static_cast<double>(env);
    }
    bench::model::forced_segment_bytes().store(v, std::memory_order_relaxed);
}

/// Parses the tuning environment once (under g_env_mutex); warns once per
/// resolution for each invalid value. Each resolved value is computed into
/// a local and published with a single store, so concurrent lock-free
/// readers never observe a mid-resolution reset.
void resolve_tuning_env_locked() {
    long long const seg = envutil::parse_env_int(
        "XMPI_SEGMENT_BYTES", 0, 1, std::numeric_limits<long long>::max(),
        "is not a positive byte count; falling back to the cost model's segment size");
    int cache = -1;
    if (char const* env = std::getenv("XMPI_SCHED_CACHE"); env != nullptr && *env != '\0') {
        if (iequals(env, "0") || iequals(env, "off")) {
            cache = 0;
        } else if (iequals(env, "1") || iequals(env, "on")) {
            cache = 1;
        } else {
            std::fprintf(stderr,
                         "xmpi: XMPI_SCHED_CACHE=\"%s\" is not 0/1 (or off/on); "
                         "the schedule cache stays enabled\n",
                         env);
        }
    }
    int hier_fit = 1;
    if (char const* env = std::getenv("XMPI_HIER_FIT"); env != nullptr && *env != '\0') {
        if (iequals(env, "0") || iequals(env, "off")) {
            hier_fit = 0;
        } else if (!iequals(env, "1") && !iequals(env, "on")) {
            std::fprintf(stderr,
                         "xmpi: XMPI_HIER_FIT=\"%s\" is not 0/1 (or off/on); "
                         "the fitted hierarchical correction stays enabled\n",
                         env);
        }
    }
    g_env_segment_bytes.store(seg, std::memory_order_relaxed);
    g_env_sched_cache.store(cache, std::memory_order_relaxed);
    g_env_hier_fit.store(hier_fit, std::memory_order_relaxed);
    publish_segment_override();
    g_tuning_resolved.store(true, std::memory_order_release);
}

void ensure_tuning_resolved() {
    if (g_tuning_resolved.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(g_env_mutex);
    if (g_tuning_resolved.load(std::memory_order_relaxed)) return;
    resolve_tuning_env_locked();
}

int resolve_env(Family f) {
    int const fi = static_cast<int>(f);
    int idx = g_env_cache[fi].load(std::memory_order_relaxed);
    if (idx != -2) return idx;
    // Serialize the slow path: ranks hit their first collective
    // concurrently and the warning must be emitted exactly once.
    std::lock_guard<std::mutex> lock(g_env_mutex);
    idx = g_env_cache[fi].load(std::memory_order_relaxed);
    if (idx != -2) return idx;
    char const* env = std::getenv(kEnvNames[fi]);
    idx = -1;
    // "auto" is an explicit request for automatic selection, not a typo.
    if (env != nullptr && *env != '\0' && !iequals(env, "auto")) {
        idx = name_index(table(f), env);
        if (idx < 0) {
            std::fprintf(stderr,
                         "xmpi: %s=\"%s\" does not name a registered %s algorithm "
                         "(valid: %s, auto); falling back to automatic selection\n",
                         kEnvNames[fi], env, kFamilyNames[fi], joined_names(table(f)).c_str());
        }
    }
    g_env_cache[fi].store(idx, std::memory_order_relaxed);
    return idx;
}

/// Cost of a hierarchical entry; needs the operation's properties because
/// the allreduce composition differs between element-wise (2D slice) and
/// leader-based shapes. With the zero-copy shm transport enabled the shm
/// intra-phase variants join each composition's candidate set — the
/// builders take the same minimum, so "hierarchical" stays one registry
/// entry whose internal shape follows the transport switch.
/// Measured correction applied to each hierarchical composition's
/// closed-form cost: geometric mean of simulated/modeled makespan over the
/// recorded divergence sweep (BENCH_sim.json "divergences", fit_ratio
/// field). The closed forms systematically overprice the compositions that
/// overlap their intra- and inter-node phases — worst for allreduce, whose
/// reduce-scatter/leader/bcast phases pipeline across nodes — so without
/// the ratio the selector under-picks "hierarchical" near the crossover
/// sizes. Ratios of 1.0 mean the recorded sweep found no systematic bias.
/// XMPI_HIER_FIT=0 restores the raw costs (regression-tested).
constexpr double kHierFitRatio[kFamilies] = {
    /*bcast=*/1.0, /*reduce=*/0.992528866, /*allgather=*/1.0,
    /*allreduce=*/0.803476613, /*alltoall=*/0.94862726,
};

double hier_cost(Family f, bench::model::TwoTier const& t, bench::model::NodeShape const& shape,
                 double p, double bytes, bool commutative, bool elementwise) {
    bool const shm = shm::enabled();
    double c = std::numeric_limits<double>::infinity();
    switch (f) {
        case Family::bcast: c = bench::model::bcast_hier(t, shape, p, bytes, shm); break;
        case Family::reduce: c = bench::model::reduce_hier(t, shape, p, bytes, shm); break;
        case Family::allgather: c = bench::model::allgather_hier(t, shape, p, bytes, shm); break;
        case Family::allreduce:
            c = bench::model::allreduce_hier(t, shape, p, bytes, commutative, elementwise, shm);
            break;
        case Family::alltoall: c = bench::model::alltoall_hier(t, shape, p, bytes); break;
    }
    if (g_env_hier_fit.load(std::memory_order_relaxed) != 0) {
        c *= kHierFitRatio[static_cast<int>(f)];
    }
    return c;
}

}  // namespace

std::vector<AlgInfo> const& algorithms(Family f) { return table(f); }

char const* family_name(Family f) { return kFamilyNames[static_cast<int>(f)]; }

// select() runs once per *invocation* for the one-shot collectives and once
// per *initialization* for the persistent ones (MPI_*_init): a persistent
// schedule keeps the algorithm chosen at init for its whole lifetime, so
// later XMPI_T_alg_set / environment refreshes only affect future inits.
int select(Family f, MPI_Comm comm, std::size_t bytes, bool commutative, bool elementwise) {
    // Pricing below may consult the pipeline-segment formulas, which honor
    // the (lazily resolved) XMPI_SEGMENT_BYTES override.
    ensure_tuning_resolved();
    auto const& t = table(f);
    int const p = comm->size();
    topo::NodeInfo const& ni = topo::node_info(comm);
    auto valid = [&](AlgInfo const& a) {
        if (!flags_valid(a, p, commutative, elementwise)) return false;
        if (a.hier) {
            if (!ni.is_hierarchical()) return false;
            // The leader-based fold is a rank-order bracketing only when
            // node membership is comm-rank contiguous.
            if ((f == Family::reduce || f == Family::allreduce) && !commutative &&
                !ni.contiguous)
                return false;
            // Leader aggregation ships multi-block messages whose counts
            // must stay within MPI's int-count limit (the per-block flat
            // algorithms are not subject to it): allgather's largest is the
            // p-block phase-C bcast, alltoall additionally exchanges
            // per-node-pair bundles of up to ppn^2 blocks.
            if (f == Family::alltoall || f == Family::allgather) {
                double blocks = static_cast<double>(p);
                if (f == Family::alltoall) {
                    blocks = std::max(blocks, static_cast<double>(ni.max_ppn) *
                                                  static_cast<double>(ni.max_ppn));
                }
                if (static_cast<double>(bytes) * blocks >
                    static_cast<double>(std::numeric_limits<int>::max()))
                    return false;
            }
        }
        return true;
    };
    auto chosen = [&](int idx) {
        g_selected[static_cast<int>(f)].store(idx, std::memory_order_relaxed);
        return idx;
    };

    int const forced = g_forced[static_cast<int>(f)].load(std::memory_order_relaxed);
    if (forced >= 0 && forced < static_cast<int>(t.size()) &&
        valid(t[static_cast<std::size_t>(forced)]))
        return chosen(forced);
    if (forced < 0) {
        int const idx = resolve_env(f);
        if (idx >= 0 && valid(t[static_cast<std::size_t>(idx)])) return chosen(idx);
    }

    bench::model::TwoTier const machine = machine_of(comm);
    bench::model::NodeShape const shape{static_cast<double>(ni.num_nodes()),
                                        static_cast<double>(ni.max_ppn),
                                        static_cast<double>(ni.min_ppn)};
    int best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!valid(t[i])) continue;
        double const c =
            t[i].hier
                ? hier_cost(f, machine, shape, static_cast<double>(p),
                            static_cast<double>(bytes), commutative, elementwise)
                : t[i].cost(machine, shape, static_cast<double>(p), static_cast<double>(bytes));
        if (c < best_cost) {
            best_cost = c;
            best = static_cast<int>(i);
        }
    }
    // Measured-selection feedback: when tuning is on, the feedback table may
    // override the model's argmin (a demotion) or schedule a probe of an
    // under-sampled candidate. The decision is frozen per generation of
    // coll_seq — identical on every rank of this collective — so ranks can
    // never mix algorithms within one call (see tune.hpp).
    if (tune::feedback_enabled() && t.size() > 1) {
        unsigned valid_mask = 0;
        for (std::size_t i = 0; i < t.size() && i < 32; ++i) {
            if (valid(t[i])) valid_mask |= 1u << i;
        }
        best = tune::pick(static_cast<int>(f), p, bytes, comm->coll_seq, best, valid_mask);
    }
    return chosen(best);
}

int run_observed(Schedule& s, Family f, int alg, std::size_t bytes) {
    RankState* const rs = tls_rank();
    if (rs == nullptr) return run_blocking(s);
    double const t0 = rs->vnow;
    int const rc = run_blocking(s);
    if (rc == MPI_SUCCESS) {
        double const elapsed = rs->vnow - t0;
        trace::hist_record(static_cast<int>(f), alg, bytes, elapsed);
        if (tune::feedback_enabled()) {
            tune::record(static_cast<int>(f), s.size(), bytes, alg, elapsed);
        }
    }
    return rc;
}

int select_flat(Family f, int p, std::size_t bytes, bool commutative, bool elementwise,
                bench::model::Machine const& m) {
    auto const& t = table(f);
    bench::model::TwoTier machine;
    machine.inter = m;
    bench::model::NodeShape const flat_shape{1, 1, 1};
    int best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.size(); ++i) {
        AlgInfo const& a = t[i];
        if (a.hier) continue;
        if (!flags_valid(a, p, commutative, elementwise)) continue;
        double const c =
            a.cost(machine, flat_shape, static_cast<double>(p), static_cast<double>(bytes));
        if (c < best_cost) {
            best_cost = c;
            best = static_cast<int>(i);
        }
    }
    return best;
}

void reset_env_cache_for_testing() {
    for (auto& c : g_env_cache) c.store(-2, std::memory_order_relaxed);
}

bool sched_cache_enabled() {
    if (int const forced = g_forced_cache.load(std::memory_order_relaxed); forced >= 0)
        return forced != 0;
    ensure_tuning_resolved();
    // Unset (-1) and 1 both mean enabled.
    return g_env_sched_cache.load(std::memory_order_relaxed) != 0;
}

void bump_sched_epoch() { g_sched_epoch.fetch_add(1, std::memory_order_relaxed); }

void refresh_tuning_env() {
    std::lock_guard<std::mutex> lock(g_env_mutex);
    resolve_tuning_env_locked();
}

// ---------------------------------------------------------------------------
// Schedule cache.
// ---------------------------------------------------------------------------

namespace {
/// Entries per communicator copy. Small: the hot-loop pattern the cache
/// exists for touches a handful of distinct collectives per communicator.
constexpr std::size_t kSchedCacheCap = 16;
}  // namespace

struct SchedCache {
    struct Entry {
        SchedSpec spec;
        std::shared_ptr<Schedule> sched;
        std::uint64_t last_use = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t epoch = 0;
    std::uint64_t use_counter = 0;
};

bool spec_cacheable(SchedSpec const& spec) {
    return sched_cache_enabled() && spec.type1 != nullptr && spec.type1->is_builtin &&
           (spec.type2 == nullptr || spec.type2->is_builtin) &&
           (spec.op == nullptr || spec.op->builtin);
}

namespace {

/// The communicator's cache with its epoch reconciled (stale entries
/// dropped and counted as evictions).
SchedCache& reconciled_cache(MPI_Comm comm, RankState* rs) {
    if (comm->sched_cache == nullptr) comm->sched_cache = std::make_shared<SchedCache>();
    SchedCache& cache = *comm->sched_cache;
    std::uint64_t const epoch = g_sched_epoch.load(std::memory_order_relaxed);
    if (cache.epoch != epoch) {
        if (rs != nullptr) rs->counters.schedule_cache_evictions += cache.entries.size();
        cache.entries.clear();
        cache.epoch = epoch;
    }
    return cache;
}

}  // namespace

std::shared_ptr<Schedule> cache_take(MPI_Comm comm, std::uint64_t seq, SchedSpec const& spec) {
    if (!spec_cacheable(spec)) return nullptr;
    RankState* const rs = tls_rank();
    SchedCache& cache = reconciled_cache(comm, rs);
    for (auto& e : cache.entries) {
        // use_count == 1 <=> only the cache references the schedule; a
        // higher count means an in-flight nonblocking request still owns
        // it, so it must not be re-armed underneath.
        if (e.spec == spec && e.sched.use_count() == 1) {
            e.last_use = ++cache.use_counter;
            e.sched->reset();
            e.sched->set_seq(seq);
            if (rs != nullptr) ++rs->counters.schedule_cache_hits;
            trace::ev(trace::Ev::sched_cache_hit, -1, -1, 0, seq,
                      static_cast<int>(spec.family), spec.alg);
            return e.sched;
        }
    }
    return nullptr;
}

void cache_insert(MPI_Comm comm, SchedSpec const& spec, std::shared_ptr<Schedule> const& s) {
    if (!spec_cacheable(spec)) return;
    RankState* const rs = tls_rank();
    SchedCache& cache = reconciled_cache(comm, rs);
    if (cache.entries.size() >= kSchedCacheCap) {
        auto lru = cache.entries.begin();
        for (auto it = cache.entries.begin(); it != cache.entries.end(); ++it) {
            if (it->last_use < lru->last_use) lru = it;
        }
        if (rs != nullptr) ++rs->counters.schedule_cache_evictions;
        cache.entries.erase(lru);
    }
    cache.entries.push_back(SchedCache::Entry{spec, s, ++cache.use_counter});
}

}  // namespace xmpi::detail::alg

// ---------------------------------------------------------------------------
// MPI_T-style control API (declared in <xmpi/mpi.h>).
// ---------------------------------------------------------------------------

using namespace xmpi::detail::alg;

int XMPI_T_alg_set(const char* family, const char* algorithm) {
    int const fi = family_index(family);
    if (fi < 0) return MPI_ERR_ARG;
    if (algorithm == nullptr || *algorithm == '\0' || iequals(algorithm, "auto")) {
        g_forced[fi].store(-1, std::memory_order_relaxed);
        bump_sched_epoch();
        return MPI_SUCCESS;
    }
    int const ai = name_index(table(static_cast<Family>(fi)), algorithm);
    if (ai < 0) return MPI_ERR_ARG;
    g_forced[fi].store(ai, std::memory_order_relaxed);
    bump_sched_epoch();
    return MPI_SUCCESS;
}

int XMPI_T_alg_get(const char* family, const char** algorithm) {
    int const fi = family_index(family);
    if (fi < 0 || algorithm == nullptr) return MPI_ERR_ARG;
    int const forced = g_forced[fi].load(std::memory_order_relaxed);
    *algorithm = forced < 0
                     ? "auto"
                     : table(static_cast<Family>(fi))[static_cast<std::size_t>(forced)].name;
    return MPI_SUCCESS;
}

int XMPI_T_alg_env_refresh(void) {
    // Re-arm the one-time invalid-value diagnostics before re-resolving, so
    // a refreshed environment warns again.
    xmpi::detail::envutil::reset_warnings();
    reset_env_cache_for_testing();
    refresh_tuning_env();
    xmpi::detail::tune::refresh_env();
    xmpi::detail::trace::refresh_env();
    xmpi::detail::shm::refresh_env();
    xmpi::detail::progress::refresh_env();
    bump_sched_epoch();
    return MPI_SUCCESS;
}

int XMPI_T_alg_selected(const char* family, const char** algorithm) {
    int const fi = family_index(family);
    if (fi < 0 || algorithm == nullptr) return MPI_ERR_ARG;
    int const sel = g_selected[fi].load(std::memory_order_relaxed);
    *algorithm = sel < 0 ? "none"
                         : table(static_cast<Family>(fi))[static_cast<std::size_t>(sel)].name;
    return MPI_SUCCESS;
}

int XMPI_T_segment_set(long long bytes) {
    if (bytes < 0) return MPI_ERR_ARG;
    ensure_tuning_resolved();
    g_forced_segment.store(bytes, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(g_env_mutex);
        publish_segment_override();
    }
    bump_sched_epoch();
    return MPI_SUCCESS;
}

int XMPI_T_segment_get(long long* bytes) {
    if (bytes == nullptr) return MPI_ERR_ARG;
    ensure_tuning_resolved();
    *bytes = static_cast<long long>(
        bench::model::forced_segment_bytes().load(std::memory_order_relaxed));
    return MPI_SUCCESS;
}

int XMPI_T_shm_set(int enabled) {
    if (enabled < -1 || enabled > 1) return MPI_ERR_ARG;
    xmpi::detail::shm::set_forced(enabled);
    return MPI_SUCCESS;
}

int XMPI_T_shm_get(int* enabled) {
    if (enabled == nullptr) return MPI_ERR_ARG;
    *enabled = xmpi::detail::shm::enabled() ? 1 : 0;
    return MPI_SUCCESS;
}

int XMPI_T_progress_set(int enabled) {
    if (enabled < -1 || enabled > 1) return MPI_ERR_ARG;
    xmpi::detail::progress::set_forced(enabled);
    return MPI_SUCCESS;
}

int XMPI_T_progress_get(int* enabled) {
    if (enabled == nullptr) return MPI_ERR_ARG;
    *enabled = xmpi::detail::progress::enabled() ? 1 : 0;
    return MPI_SUCCESS;
}

int XMPI_T_sched_cache_set(int enabled) {
    if (enabled < -1 || enabled > 1) return MPI_ERR_ARG;
    g_forced_cache.store(enabled, std::memory_order_relaxed);
    bump_sched_epoch();
    return MPI_SUCCESS;
}

int XMPI_T_sched_cache_get(int* enabled) {
    if (enabled == nullptr) return MPI_ERR_ARG;
    *enabled = sched_cache_enabled() ? 1 : 0;
    return MPI_SUCCESS;
}

int XMPI_T_sched_stats(unsigned long long* builds, unsigned long long* cache_hits,
                       unsigned long long* cache_evictions,
                       unsigned long long* peak_scratch_bytes) {
    xmpi::detail::RankState* const rs = xmpi::detail::tls_rank();
    if (rs == nullptr) return MPI_ERR_OTHER;  // only meaningful inside a rank
    if (builds != nullptr) *builds = rs->counters.schedule_builds;
    if (cache_hits != nullptr) *cache_hits = rs->counters.schedule_cache_hits;
    if (cache_evictions != nullptr) *cache_evictions = rs->counters.schedule_cache_evictions;
    if (peak_scratch_bytes != nullptr)
        *peak_scratch_bytes = rs->counters.schedule_peak_scratch_bytes;
    return MPI_SUCCESS;
}

int XMPI_T_alg_list(const char* family, char* buf, int buflen) {
    int const fi = family_index(family);
    if (fi < 0 || buf == nullptr || buflen <= 0) return MPI_ERR_ARG;
    auto const& t = table(static_cast<Family>(fi));
    int pos = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        int const need = static_cast<int>(std::strlen(t[i].name)) + (i > 0 ? 1 : 0);
        if (pos + need >= buflen) return MPI_ERR_ARG;  // buffer too small
        if (i > 0) buf[pos++] = ',';
        std::memcpy(buf + pos, t[i].name, std::strlen(t[i].name));
        pos += static_cast<int>(std::strlen(t[i].name));
    }
    buf[pos] = '\0';
    return MPI_SUCCESS;
}
