/// @file hierarchical.cpp
/// @brief Leader-based hierarchical collective algorithms. Every builder
/// composes existing schedule builders as sub-schedules over group scopes
/// (see Schedule::push_group): an intra-node phase priced on the cheap
/// shared-memory tier, an inter-node phase among node leaders (or slice peer
/// groups), and an intra-node redistribution. Inner-phase algorithms are
/// chosen by the same cost formulas the registry uses (select_flat /
/// bench::model::*_hier), so the selection crossovers, the builders and the
/// analytic curves stay consistent.
///
/// Tag layout within one collective sequence number: intra-node phases use
/// tag bases 0 (up) and 512 (down), inter-node phases use 256. Phases can
/// never match each other's messages (distinct bases), and concurrent
/// subgroups of one phase are disjoint rank sets.
///
/// Fold-order discipline: intra-node reductions fold members in comm-rank
/// order and inter-node phases fold nodes in dense node order (ascending
/// first member), so when every node's members are a contiguous comm-rank
/// range the whole composition is a rank-order bracketing and
/// non-commutative operations stay exact; the registry only selects
/// hierarchical reductions for non-commutative operations in that case.
#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "../shm/shm.hpp"
#include "../topo/topo.hpp"
#include "algorithms.hpp"
#include "fold.hpp"

namespace xmpi::detail::alg {
namespace {

using topo::NodeInfo;

int const kIntraUp = 0;     ///< tag base: intra-node gather/reduce phase
int const kInter = 256;     ///< tag base: inter-node phase
int const kIntraDown = 512; ///< tag base: intra-node bcast/scatter phase

bench::model::NodeShape shape_of(NodeInfo const& ni) {
    return {static_cast<double>(ni.num_nodes()), static_cast<double>(ni.max_ppn),
            static_cast<double>(ni.min_ppn)};
}

// ---------------------------------------------------------------------------
// Segmented-phase composer. A pipelined hierarchical collective splits its
// payload into near-even element segments and emits its phases once per
// segment, seg-major: because the transport is eager and receives are
// posted per phase, segment k+1's cheap phases execute while segment k's
// expensive phase is still in flight — the intra gather of segment k+1
// overlaps the inter-node exchange of segment k, which overlaps the intra
// share-back of segment k-1. The bcast builder's per-segment relay (PR 3)
// is the original instance of this shape; allgather and alltoall now reuse
// the same machinery.
// ---------------------------------------------------------------------------

/// Emits `phase(k, elem_off, elem_len)` for each of `nseg` near-even
/// segments of `count` elements (earlier segments take the remainder, so
/// segment 0 is the largest — size scratch for it).
template <typename Phase>
void compose_segments(int count, int nseg, Phase&& phase) {
    int const base = count / nseg;
    int const rem = count % nseg;
    long long off = 0;
    for (int k = 0; k < nseg; ++k) {
        int const len = base + (k < rem ? 1 : 0);
        phase(k, off, len);
        off += len;
    }
}

/// Largest segment's element count under compose_segments' split.
int max_seg_len(int count, int nseg) { return count / nseg + (count % nseg != 0 ? 1 : 0); }

/// True when the caller pinned a segment size (XMPI_SEGMENT_BYTES /
/// XMPI_T_segment_set): a pin engages the pipelined composition whenever it
/// yields more than one segment, bypassing the cost-model comparison, so
/// harnesses can exercise the pipeline at any granularity. A pin of at
/// least the message size yields one segment and degenerates to the
/// unpipelined composition.
bool segment_forced() {
    return bench::model::forced_segment_bytes().load(std::memory_order_relaxed) > 0;
}

/// The calling rank's index within its node's member list.
int my_member_index(NodeInfo const& ni, int r) {
    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    for (std::size_t i = 0; i < mem.size(); ++i) {
        if (mem[i] == r) return static_cast<int>(i);
    }
    return 0;  // unreachable: r is always a member of its own node
}

/// Node-leader comm ranks in dense node order (the inter-phase group map).
std::vector<int> leader_map(NodeInfo const& ni) {
    std::vector<int> leaders;
    leaders.reserve(static_cast<std::size_t>(ni.num_nodes()));
    for (int g = 0; g < ni.num_nodes(); ++g) leaders.push_back(ni.leader(g));
    return leaders;
}

// ---------------------------------------------------------------------------
// Zero-copy intra-node phases (src/xmpi/shm). Copy steps are emitted
// *outside* group scopes — peers are comm ranks and cell ids use the same
// tag bases the message phases use, so copy cells and message tags keep the
// phase-separation discipline. Every builder that publishes ends with
// drain_published(), so no user or scratch buffer is handed back (or
// overwritten by a restart) while a same-node peer still reads it.
// ---------------------------------------------------------------------------

/// Shm mirror of append_binomial_reduce over this node's member list
/// (root = member 0, the leader): the same binomial tree with each
/// (send, recv) pair replaced by a (copy_pub, copy_get) rendezvous, and
/// byte-identical results — FoldChain emits the exact apply_op bracketing
/// append_binomial_reduce does. Ranks that never fold (odd member index)
/// publish the user input itself: zero copies on the way up, safe because
/// the parent's read completes (ack) before the leader can publish onward,
/// and the final drain precedes any buffer reuse.
void append_shm_tree_reduce(Schedule& s, std::vector<int> const& mem, int mi, void const* input,
                            void* out, int count, MPI_Datatype type, MPI_Op op, int cell_base) {
    int const m = static_cast<int>(mem.size());
    std::size_t const bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(type->extent);
    if ((mi & 1) != 0) {
        s.copy_pub(cell_base + mi, input, count, type, {mem[static_cast<std::size_t>(mi) - 1]});
        return;
    }
    std::byte* const acc = s.alloc(bytes);
    if (bytes > 0) {
        s.local([acc, input, bytes]() {
            std::memcpy(acc, input, bytes);
            return MPI_SUCCESS;
        });
    }
    FoldChain chain{s, op, count, type};
    chain.cur = acc;
    chain.free = {s.alloc(bytes)};
    for (int mask = 1; mask < m; mask <<= 1) {
        if ((mi & mask) != 0) {
            s.copy_pub(cell_base + mi, chain.cur, count, type,
                       {mem[static_cast<std::size_t>(mi - mask)]});
            return;
        }
        if (mi + mask < m) {
            std::byte* const target = chain.take();
            s.copy_get(cell_base + mi + mask, mem[static_cast<std::size_t>(mi + mask)], target,
                       0, count, type);
            chain.fold_right(target);
        }
    }
    // Only member 0 (the leader) reaches this point with the node result.
    chain.emit_copy_out(out, bytes);
}

}  // namespace

// ---------------------------------------------------------------------------
// Bcast: root -> node leaders (segment-pipelined ring or binomial tree among
// leaders, whichever the cost model prefers) with per-segment binomial relay
// into each node. The root acts as its own node's leader so the payload
// never takes a detour.
// ---------------------------------------------------------------------------

int build_hier_bcast(Schedule& s, void* buf, int count, MPI_Datatype type, int root) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const r = s.rank();
    std::size_t const bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(type->size);

    // Leaders in ring order starting at the root's node, with the root
    // standing in as its node's leader.
    int const root_node = ni.node_of[static_cast<std::size_t>(root)];
    std::vector<int> leaders(static_cast<std::size_t>(n));
    int my_lrank = -1;
    for (int j = 0; j < n; ++j) {
        int const g = (root_node + j) % n;
        leaders[static_cast<std::size_t>(j)] = g == root_node ? root : ni.leader(g);
        if (leaders[static_cast<std::size_t>(j)] == r) my_lrank = j;
    }

    auto const t = machine_of(c);
    auto const shape = shape_of(ni);
    double const c_ring = bench::model::bcast_hier_ring(t, shape, static_cast<double>(bytes));
    double const c_tree = bench::model::bcast_hier_tree(t, shape, static_cast<double>(bytes));
    double const c_ring_shm =
        bench::model::bcast_hier_ring_shm(t, shape, static_cast<double>(bytes));
    double const c_tree_shm =
        bench::model::bcast_hier_tree_shm(t, shape, static_cast<double>(bytes));
    // Zero-copy intra relay: the leader publishes each arrived segment once
    // and the other members read it concurrently (p-1 direct loads instead
    // of a log(m)-deep message relay). Same decision inputs as the registry
    // (machine_of carries the copy tier), so selection and emission agree.
    bool const shm_intra = shm::enabled() && ni.max_ppn > 1 &&
                           std::min(c_ring_shm, c_tree_shm) < std::min(c_ring, c_tree);
    bool const use_ring = shm_intra ? c_ring_shm <= c_tree_shm : c_ring <= c_tree;
    int nseg = 1;
    if (use_ring) nseg = clamp_segments_to_count(ring_segments(bytes), count);

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const node_leader = ni.my_node == root_node ? root : ni.leader(ni.my_node);
    int my_mrank = 0, leader_mrank = 0;
    for (int i = 0; i < m; ++i) {
        if (mem[static_cast<std::size_t>(i)] == r) my_mrank = i;
        if (mem[static_cast<std::size_t>(i)] == node_leader) leader_mrank = i;
    }

    compose_segments(count, nseg, [&](int k, long long off, int len) {
        std::byte* const seg = at_offset(buf, off, type);
        if (my_lrank >= 0 && n > 1) {
            GroupScope scope(s, leaders, my_lrank, kInter);
            if (use_ring) {
                if (my_lrank != 0) s.recv(my_lrank - 1, k, seg, len, type);
                if (my_lrank != n - 1) s.send(my_lrank + 1, k, seg, len, type);
            } else {
                append_binomial_bcast(s, seg, len, type, /*root=*/0, /*tag_base=*/k);
            }
        }
        if (m > 1) {
            if (shm_intra) {
                if (r == node_leader) {
                    std::vector<int> readers;
                    readers.reserve(static_cast<std::size_t>(m) - 1);
                    for (int w : mem) {
                        if (w != r) readers.push_back(w);
                    }
                    s.copy_pub(kIntraDown + k, seg, len, type, readers);
                } else {
                    s.copy_get(kIntraDown + k, node_leader, seg, /*src_byte_off=*/0, len, type);
                }
            } else {
                GroupScope scope(s, mem, my_mrank, kIntraUp);
                append_binomial_bcast(s, seg, len, type, leader_mrank, /*tag_base=*/k);
            }
        }
    });
    if (shm_intra) s.drain_published();
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Reduce: intra-node binomial reduce to each node's first member, binomial
// reduce among leaders in dense node order (a rank-order bracketing on
// node-contiguous communicators), then one intra-node hop to the root when
// the root is not its node's leader.
// ---------------------------------------------------------------------------

int build_hier_reduce(Schedule& s, void const* input, void* recvbuf, int count, MPI_Datatype type,
                      MPI_Op op, int root) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const r = s.rank();
    std::size_t const bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(type->extent);

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);
    bool const node_leader = mem.front() == r;

    int const root_node = ni.node_of[static_cast<std::size_t>(root)];
    int const root_leader = ni.leader(root_node);

    auto const t = machine_of(c);
    double const mb = static_cast<double>(count) * static_cast<double>(type->size);
    double const pd = static_cast<double>(s.size());
    bool const use_shm =
        shm::enabled() &&
        bench::model::reduce_hier(t, shape_of(ni), pd, mb, /*shm=*/true) <
            bench::model::reduce_hier(t, shape_of(ni), pd, mb, /*shm=*/false);

    // Phase A: reduce this node's contributions to its leader.
    std::byte* node_acc = s.alloc(bytes);
    if (m > 1) {
        if (use_shm) {
            append_shm_tree_reduce(s, mem, my_mrank, input, node_acc, count, type, op, kIntraUp);
        } else {
            GroupScope scope(s, mem, my_mrank, kIntraUp);
            append_binomial_reduce(s, input, node_acc, count, type, op, /*root=*/0,
                                   /*tag_base=*/0);
        }
    } else if (bytes > 0) {
        // Snapshot as a schedule step (not at build time): keeps this
        // builder composable with execution-produced inputs, like the flat
        // reduction builders.
        s.local([node_acc, input, bytes]() {
            std::memcpy(node_acc, input, bytes);
            return MPI_SUCCESS;
        });
    }

    // Phase B: reduce the node results among leaders toward the root node's
    // leader (dense node order keeps the fold a bracketing). Phase C hands
    // the result from that leader to the root when they differ.
    if (n > 1) {
        if (node_leader) {
            void* const out = r == root ? recvbuf
                                        : (ni.my_node == root_node
                                               ? static_cast<void*>(s.alloc(bytes))
                                               : nullptr);  // never dereferenced elsewhere
            {
                GroupScope scope(s, leader_map(ni), ni.my_node, kInter);
                append_binomial_reduce(s, node_acc, out, count, type, op, root_node,
                                       /*tag_base=*/0);
                if (root_node != 0 && s.rank() == root_node) s.recv(0, 1, out, count, type);
            }
            if (ni.my_node == root_node && r != root) {
                if (use_shm) {
                    s.copy_pub(kIntraDown, out, count, type, {root});
                } else {
                    s.send(root, kIntraDown, out, count, type);
                }
            }
        }
        if (r == root && root_leader != root) {
            if (use_shm) {
                s.copy_get(kIntraDown, root_leader, recvbuf, /*src_byte_off=*/0, count, type);
            } else {
                s.recv(root_leader, kIntraDown, recvbuf, count, type);
            }
        }
    } else {
        // Degenerate single-node topology (never auto-selected): the node
        // result is already final at the leader.
        if (node_leader && r != root) s.send(root, kIntraDown, node_acc, count, type);
        if (r == root) {
            if (root_leader != root) {
                s.recv(root_leader, kIntraDown, recvbuf, count, type);
            } else if (bytes > 0) {
                std::byte* const acc = node_acc;
                s.local([recvbuf, acc, bytes]() {
                    std::memcpy(recvbuf, acc, bytes);
                    return MPI_SUCCESS;
                });
            }
        }
    }
    if (use_shm) s.drain_published();
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Allreduce. Element-wise (builtin) operations use the "2D" composition:
// a flat intra-node reduce-scatter over S = min_ppn slices, S *parallel*
// inter-node allreduces (slice peer groups: the j-th member of every node),
// and a flat intra-node share-back. Splitting the inter-node work across the
// node's members divides the expensive-tier traffic per critical path by S,
// which is where hierarchy genuinely beats the best flat algorithm at scale.
// Non-element-wise user operations fall back to the leader composition
// (intra reduce, allreduce among leaders, intra bcast), which keeps whole
// vectors intact and rank-order bracketings exact.
// ---------------------------------------------------------------------------

namespace {

void build_hier_allreduce_2d(Schedule& s, void const* input, void* recvbuf, int count,
                             MPI_Datatype type, MPI_Op op) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const r = s.rank();
    std::size_t const extent = static_cast<std::size_t>(type->extent);

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);

    int const S = ni.min_ppn;
    auto const off = block_offsets(count, S);
    auto slice_count = [&](int j) {
        return static_cast<int>(off[static_cast<std::size_t>(j) + 1] -
                                off[static_cast<std::size_t>(j)]);
    };
    bool const owner = my_mrank < S;
    int const my_slice = my_mrank;  // meaningful only when owner

    auto const t = machine_of(c);
    double const mb = static_cast<double>(count) * static_cast<double>(type->size);
    double const pd = static_cast<double>(s.size());
    bool const use_shm =
        shm::enabled() && m > 1 &&
        bench::model::allreduce_hier(t, shape_of(ni), pd, mb, /*commutative=*/true,
                                     /*elementwise=*/true, /*shm=*/true) <
            bench::model::allreduce_hier(t, shape_of(ni), pd, mb, /*commutative=*/true,
                                         /*elementwise=*/true, /*shm=*/false);

    // Phase A: flat intra-node reduce-scatter. With shm, each member
    // publishes its whole input once and every slice owner loads just its
    // slice out of it (src_off selects the slice): one data copy per
    // contribution, no per-slice messages. Safe under MPI_IN_PLACE because
    // every later write to recvbuf slice j is gated on owner j's phase C
    // publish, which happens after owner j — the sole reader of slice j —
    // acked every phase A cell. Without shm: all sends first (the transport
    // is eager, so no emission order can deadlock), then each slice owner
    // drains contributions in member order.
    if (use_shm) {
        std::vector<int> readers;
        readers.reserve(static_cast<std::size_t>(S));
        for (int j = 0; j < S; ++j) {
            if (mem[static_cast<std::size_t>(j)] == r) continue;
            readers.push_back(mem[static_cast<std::size_t>(j)]);
        }
        if (!readers.empty()) s.copy_pub(kIntraUp + my_mrank, input, count, type, readers);
    } else {
        for (int j = 0; j < S; ++j) {
            if (mem[static_cast<std::size_t>(j)] == r) continue;
            s.send(mem[static_cast<std::size_t>(j)], kIntraUp + j,
                   at_offset(input, off[static_cast<std::size_t>(j)], type), slice_count(j), type);
        }
    }
    FoldChain chain{s, op, owner ? slice_count(my_slice) : 0, type};
    if (owner) {
        std::size_t const sbytes = static_cast<std::size_t>(slice_count(my_slice)) * extent;
        std::byte* const own = s.alloc(sbytes);
        if (sbytes > 0) {
            std::byte const* const src =
                at_offset(input, off[static_cast<std::size_t>(my_slice)], type);
            s.local([own, src, sbytes]() {
                std::memcpy(own, src, sbytes);
                return MPI_SUCCESS;
            });
        }
        chain.free = {s.alloc(sbytes), s.alloc(sbytes)};
        for (int i = 0; i < m; ++i) {
            if (i == my_mrank) {
                chain.fold_right(own);
                continue;
            }
            std::byte* const target = chain.take();
            if (use_shm) {
                s.copy_get(kIntraUp + i, mem[static_cast<std::size_t>(i)], target,
                           static_cast<long long>(off[static_cast<std::size_t>(my_slice)]) *
                               static_cast<long long>(extent),
                           slice_count(my_slice), type);
            } else {
                s.recv(mem[static_cast<std::size_t>(i)], kIntraUp + my_slice, target,
                       slice_count(my_slice), type);
            }
            chain.fold_right(target);
        }
    }

    // Phase B: inter-node allreduce of each slice within its peer group
    // (the j-th member of every node; S groups run concurrently on disjoint
    // ranks). The inner algorithm is the cost model's best single-tier
    // choice for n ranks on a slice.
    std::byte* result = nullptr;
    if (owner) {
        int const cnt = slice_count(my_slice);
        std::size_t const sbytes = static_cast<std::size_t>(cnt) * extent;
        result = s.alloc(sbytes);
        if (n > 1) {
            std::vector<int> peers;
            peers.reserve(static_cast<std::size_t>(n));
            for (int g = 0; g < n; ++g)
                peers.push_back(ni.members[static_cast<std::size_t>(g)]
                                          [static_cast<std::size_t>(my_slice)]);
            int const inner = select_flat(Family::allreduce, n,
                                          static_cast<std::size_t>(cnt) *
                                              static_cast<std::size_t>(type->size),
                                          /*commutative=*/true, /*elementwise=*/true, t.inter);
            GroupScope scope(s, std::move(peers), ni.my_node, kInter);
            build_allreduce(inner, s, chain.cur, result, cnt, type, op);
        } else if (sbytes > 0) {
            std::byte* const acc = chain.cur;
            s.local([result, acc, sbytes]() {
                std::memcpy(result, acc, sbytes);
                return MPI_SUCCESS;
            });
        }
    }

    // Phase C: flat intra-node share-back of the reduced slices (with shm,
    // each owner publishes its reduced slice once and the other m-1 members
    // read it concurrently).
    if (owner) {
        int const cnt = slice_count(my_slice);
        if (use_shm) {
            std::vector<int> readers;
            readers.reserve(static_cast<std::size_t>(m) - 1);
            for (int i = 0; i < m; ++i) {
                if (i == my_mrank) continue;
                readers.push_back(mem[static_cast<std::size_t>(i)]);
            }
            if (!readers.empty()) s.copy_pub(kIntraDown + my_mrank, result, cnt, type, readers);
        } else {
            for (int i = 0; i < m; ++i) {
                if (i == my_mrank) continue;
                s.send(mem[static_cast<std::size_t>(i)], kIntraDown + my_slice, result, cnt, type);
            }
        }
        std::size_t const sbytes = static_cast<std::size_t>(cnt) * extent;
        if (sbytes > 0) {
            std::byte* const dst =
                at_offset(recvbuf, off[static_cast<std::size_t>(my_slice)], type);
            s.local([dst, result, sbytes]() {
                std::memcpy(dst, result, sbytes);
                return MPI_SUCCESS;
            });
        }
    }
    for (int j = 0; j < S; ++j) {
        if (owner && j == my_slice) continue;
        if (use_shm) {
            s.copy_get(kIntraDown + j, mem[static_cast<std::size_t>(j)],
                       at_offset(recvbuf, off[static_cast<std::size_t>(j)], type),
                       /*src_byte_off=*/0, slice_count(j), type);
        } else {
            s.recv(mem[static_cast<std::size_t>(j)], kIntraDown + j,
                   at_offset(recvbuf, off[static_cast<std::size_t>(j)], type), slice_count(j),
                   type);
        }
    }
    if (use_shm) s.drain_published();
}

void build_hier_allreduce_leader(Schedule& s, void const* input, void* recvbuf, int count,
                                 MPI_Datatype type, MPI_Op op) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const r = s.rank();
    std::size_t const bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(type->extent);

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);
    bool const node_leader = mem.front() == r;

    auto const t = machine_of(c);
    double const mb = static_cast<double>(count) * static_cast<double>(type->size);
    double const pd = static_cast<double>(s.size());
    bool const use_shm =
        shm::enabled() && m > 1 &&
        bench::model::allreduce_hier(t, shape_of(ni), pd, mb, op->commutative,
                                     /*elementwise=*/false, /*shm=*/true) <
            bench::model::allreduce_hier(t, shape_of(ni), pd, mb, op->commutative,
                                         /*elementwise=*/false, /*shm=*/false);

    // Phase A: intra-node reduce to the leader (zero-copy tree when the
    // copy tier wins; byte-identical fold bracketing either way).
    std::byte* const node_acc = s.alloc(bytes);
    if (m > 1) {
        if (use_shm) {
            append_shm_tree_reduce(s, mem, my_mrank, input, node_acc, count, type, op, kIntraUp);
        } else {
            GroupScope scope(s, mem, my_mrank, kIntraUp);
            append_binomial_reduce(s, input, node_acc, count, type, op, /*root=*/0,
                                   /*tag_base=*/0);
        }
    } else if (bytes > 0) {
        s.local([node_acc, input, bytes]() {
            std::memcpy(node_acc, input, bytes);
            return MPI_SUCCESS;
        });
    }

    // Phase B: allreduce among leaders (rank-order-safe inner algorithm for
    // non-commutative operations; select_flat filters by the flags).
    if (node_leader) {
        if (n > 1) {
            int const inner = select_flat(Family::allreduce, n,
                                          static_cast<std::size_t>(count) *
                                              static_cast<std::size_t>(type->size),
                                          op->commutative, /*elementwise=*/false, t.inter);
            GroupScope scope(s, leader_map(ni), ni.my_node, kInter);
            build_allreduce(inner, s, node_acc, recvbuf, count, type, op);
        } else if (bytes > 0) {
            s.local([recvbuf, node_acc, bytes]() {
                std::memcpy(recvbuf, node_acc, bytes);
                return MPI_SUCCESS;
            });
        }
    }

    // Phase C: the final vector leaves the leader — a single publish read
    // concurrently by the other m-1 members under shm, a binomial relay
    // otherwise.
    if (m > 1) {
        if (use_shm) {
            if (node_leader) {
                std::vector<int> readers(mem.begin() + 1, mem.end());
                s.copy_pub(kIntraDown, recvbuf, count, type, readers);
            } else {
                s.copy_get(kIntraDown, mem.front(), recvbuf, /*src_byte_off=*/0, count, type);
            }
        } else {
            GroupScope scope(s, mem, my_mrank, kIntraDown);
            append_binomial_bcast(s, recvbuf, count, type, /*root=*/0, /*tag_base=*/0);
        }
    }
    if (use_shm) s.drain_published();
}

}  // namespace

int build_hier_allreduce(Schedule& s, void const* input, void* recvbuf, int count,
                         MPI_Datatype type, MPI_Op op) {
    // Builtin operations are element-wise (and commutative) by construction,
    // which is what makes slicing the vector across node members legal.
    if (op->builtin) {
        build_hier_allreduce_2d(s, input, recvbuf, count, type, op);
    } else {
        build_hier_allreduce_leader(s, input, recvbuf, count, type, op);
    }
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Allgather: intra-node gather to the leader (blocks land directly at their
// comm-rank offsets), a leader ring forwarding packed per-node bundles, and
// an intra-node binomial bcast of the assembled result. Two compositions:
// the PR-3 unpipelined one (each phase completes before the next starts)
// and a segment-pipelined one that interleaves the three phases per
// segment; build_hier_allgather picks by the shared cost model (or by the
// segment-size pin).
// ---------------------------------------------------------------------------

namespace {

int build_hier_allgather_unpipelined(Schedule& s, void* recvbuf, int recvcount,
                                     MPI_Datatype recvtype) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const p = s.size();
    int const r = s.rank();
    std::size_t const bb =
        static_cast<std::size_t>(recvcount) * static_cast<std::size_t>(recvtype->size);

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);
    bool const node_leader = mem.front() == r;

    // Phase A: members deposit their block at the leader, directly at its
    // final comm-rank offset in the leader's recvbuf.
    if (!node_leader) {
        s.send(mem.front(), kIntraUp,
               at_offset(recvbuf, static_cast<long long>(r) * recvcount, recvtype), recvcount,
               recvtype);
    } else {
        for (int i = 1; i < m; ++i) {
            int const w = mem[static_cast<std::size_t>(i)];
            s.recv(w, kIntraUp, at_offset(recvbuf, static_cast<long long>(w) * recvcount, recvtype),
                   recvcount, recvtype);
        }
    }

    // Phase B: leader ring. Round k forwards the bundle of node
    // (my_node - k) to the next leader; bundles are packed because a node's
    // blocks need not be contiguous in recvbuf.
    if (node_leader && n > 1) {
        auto node_size = [&](int g) {
            return static_cast<int>(ni.members[static_cast<std::size_t>(g)].size());
        };
        std::size_t const max_bundle = static_cast<std::size_t>(ni.max_ppn) * bb;
        std::byte* cur = s.alloc(max_bundle);
        std::byte* next = s.alloc(max_bundle);
        // Pack this node's bundle (a local step: phase A receives must have
        // landed first, and step order guarantees that).
        if (bb > 0) {
            auto const* members = &ni.members[static_cast<std::size_t>(ni.my_node)];
            s.local([cur, members, recvbuf, recvcount, recvtype, bb]() {
                for (std::size_t i = 0; i < members->size(); ++i) {
                    recvtype->pack(
                        at_offset(recvbuf,
                                  static_cast<long long>((*members)[i]) * recvcount, recvtype),
                        recvcount, cur + i * bb);
                }
                return MPI_SUCCESS;
            });
        }
        int const right = (ni.my_node + 1) % n;
        int const left = (ni.my_node - 1 + n) % n;
        std::vector<int> const leaders = leader_map(ni);
        for (int k = 0; k < n - 1; ++k) {
            int const send_node = (ni.my_node - k + n) % n;
            int const recv_node = (ni.my_node - k - 1 + n) % n;
            int const slot = s.post(leaders[static_cast<std::size_t>(left)], kInter + k, next,
                                    static_cast<int>(static_cast<std::size_t>(node_size(recv_node)) * bb),
                                    MPI_BYTE);
            s.send(leaders[static_cast<std::size_t>(right)], kInter + k, cur,
                   static_cast<int>(static_cast<std::size_t>(node_size(send_node)) * bb),
                   MPI_BYTE);
            s.wait(slot);
            if (bb > 0) {
                auto const* members = &ni.members[static_cast<std::size_t>(recv_node)];
                s.local([next, members, recvbuf, recvcount, recvtype, bb]() {
                    for (std::size_t i = 0; i < members->size(); ++i) {
                        recvtype->unpack(
                            next + i * bb, recvcount,
                            at_offset(recvbuf,
                                      static_cast<long long>((*members)[i]) * recvcount,
                                      recvtype));
                    }
                    return MPI_SUCCESS;
                });
            }
            std::swap(cur, next);
        }
    }

    // Phase C: the leader broadcasts the assembled result into its node.
    if (m > 1) {
        GroupScope scope(s, mem, my_mrank, kIntraDown);
        append_binomial_bcast(s, recvbuf, p * recvcount, recvtype, /*root=*/0, /*tag_base=*/0);
    }
    return MPI_SUCCESS;
}

/// Segment-pipelined composition. Per segment k of every rank's block:
/// members deposit their slice at the leader (phase A, all segments emitted
/// up front — eager sends make every slice available as soon as the member
/// reaches it), the leader rings the node bundles of segment k (phase B),
/// packs the assembled segment and relays it binomially into the node
/// (phase C). Segment-major emission order pipelines: while the leader sits
/// in segment k's ring waits, the members relay and unpack segment k-1, and
/// segment k+1's slices are already en route.
int build_hier_allgather_pipelined(Schedule& s, void* recvbuf, int recvcount,
                                   MPI_Datatype recvtype, int nseg) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const p = s.size();
    int const r = s.rank();
    std::size_t const esz = static_cast<std::size_t>(recvtype->size);

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);
    bool const node_leader = mem.front() == r;
    std::size_t const sb_max = static_cast<std::size_t>(max_seg_len(recvcount, nseg)) * esz;

    // Phase A, all segments up front: the slice [off, off+len) of our block
    // goes to the leader at its final recvbuf offset.
    if (!node_leader) {
        compose_segments(recvcount, nseg, [&](int k, long long off, int len) {
            s.send(mem.front(), kIntraUp + k,
                   at_offset(recvbuf, static_cast<long long>(r) * recvcount + off, recvtype), len,
                   recvtype);
        });
    }

    // Shared per-rank scratch, reused across segments (program order makes
    // each buffer's previous use complete before its next: sends copy into
    // the transport eagerly and unpacks precede the next segment's receive).
    std::byte* ring_cur = nullptr;
    std::byte* ring_next = nullptr;
    std::vector<int> leaders;
    if (node_leader && n > 1) {
        std::size_t const max_bundle = static_cast<std::size_t>(ni.max_ppn) * sb_max;
        ring_cur = s.alloc(max_bundle);
        ring_next = s.alloc(max_bundle);
        leaders = leader_map(ni);
    }
    std::byte* const c_bundle = m > 1 ? s.alloc(static_cast<std::size_t>(p) * sb_max) : nullptr;

    NodeInfo const* const nip = &ni;
    compose_segments(recvcount, nseg, [&](int k, long long off, int len) {
        std::size_t const sb = static_cast<std::size_t>(len) * esz;
        if (node_leader) {
            // Phase A receives for this segment (slices land in place).
            for (int i = 1; i < m; ++i) {
                int const w = mem[static_cast<std::size_t>(i)];
                s.recv(w, kIntraUp + k,
                       at_offset(recvbuf, static_cast<long long>(w) * recvcount + off, recvtype),
                       len, recvtype);
            }
            // Phase B: ring the per-node bundles of this segment. Round j
            // reuses tag kInter + j across segments — matching is FIFO per
            // (source, tag) and both sides emit segments in ascending order.
            if (n > 1) {
                auto node_size = [&](int g) {
                    return static_cast<int>(nip->members[static_cast<std::size_t>(g)].size());
                };
                if (sb > 0) {
                    auto const* members = &nip->members[static_cast<std::size_t>(ni.my_node)];
                    std::byte* const cur = ring_cur;
                    s.local([cur, members, recvbuf, recvcount, recvtype, off, len, sb]() {
                        for (std::size_t i = 0; i < members->size(); ++i) {
                            recvtype->pack(
                                at_offset(recvbuf,
                                          static_cast<long long>((*members)[i]) * recvcount + off,
                                          recvtype),
                                len, cur + i * sb);
                        }
                        return MPI_SUCCESS;
                    });
                }
                int const right = (ni.my_node + 1) % n;
                int const left = (ni.my_node - 1 + n) % n;
                for (int j = 0; j < n - 1; ++j) {
                    int const send_node = (ni.my_node - j + n) % n;
                    int const recv_node = (ni.my_node - j - 1 + n) % n;
                    int const slot =
                        s.post(leaders[static_cast<std::size_t>(left)], kInter + j, ring_next,
                               static_cast<int>(static_cast<std::size_t>(node_size(recv_node)) * sb),
                               MPI_BYTE);
                    s.send(leaders[static_cast<std::size_t>(right)], kInter + j, ring_cur,
                           static_cast<int>(static_cast<std::size_t>(node_size(send_node)) * sb),
                           MPI_BYTE);
                    s.wait(slot);
                    if (sb > 0) {
                        auto const* members = &nip->members[static_cast<std::size_t>(recv_node)];
                        std::byte* const arrived = ring_next;
                        s.local([arrived, members, recvbuf, recvcount, recvtype, off, len, sb]() {
                            for (std::size_t i = 0; i < members->size(); ++i) {
                                recvtype->unpack(
                                    arrived + i * sb, len,
                                    at_offset(recvbuf,
                                              static_cast<long long>((*members)[i]) * recvcount +
                                                  off,
                                              recvtype));
                            }
                            return MPI_SUCCESS;
                        });
                    }
                    std::swap(ring_cur, ring_next);
                }
            }
            // Phase C: pack the assembled segment (p strided slices) into
            // one contiguous bundle for the intra-node relay.
            if (m > 1 && sb > 0) {
                s.local([c_bundle, recvbuf, recvcount, recvtype, off, len, sb, p]() {
                    for (int q = 0; q < p; ++q) {
                        recvtype->pack(
                            at_offset(recvbuf, static_cast<long long>(q) * recvcount + off,
                                      recvtype),
                            len, c_bundle + static_cast<std::size_t>(q) * sb);
                    }
                    return MPI_SUCCESS;
                });
            }
        }
        if (m > 1) {
            {
                GroupScope scope(s, mem, my_mrank, kIntraDown);
                append_binomial_bcast(s, c_bundle, static_cast<int>(static_cast<std::size_t>(p) * sb),
                                      MPI_BYTE, /*root=*/0, /*tag_base=*/k);
            }
            if (!node_leader && sb > 0) {
                s.local([c_bundle, recvbuf, recvcount, recvtype, off, len, sb, p]() {
                    for (int q = 0; q < p; ++q) {
                        recvtype->unpack(
                            c_bundle + static_cast<std::size_t>(q) * sb, len,
                            at_offset(recvbuf, static_cast<long long>(q) * recvcount + off,
                                      recvtype));
                    }
                    return MPI_SUCCESS;
                });
            }
        }
    });
    return MPI_SUCCESS;
}

/// Leader composition with zero-copy intra phases: members publish their
/// block once and the leader loads each directly into its final recvbuf
/// offset (phase A), the packed leader ring runs unchanged (phase B), and
/// the assembled result is published once and read concurrently by the
/// other m-1 members (phase C — one epoch of p·B-byte reads instead of a
/// log(m)-deep message relay).
int build_hier_allgather_leader_shm(Schedule& s, void* recvbuf, int recvcount,
                                    MPI_Datatype recvtype) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const p = s.size();
    int const r = s.rank();
    std::size_t const bb =
        static_cast<std::size_t>(recvcount) * static_cast<std::size_t>(recvtype->size);

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);
    bool const node_leader = mem.front() == r;

    // Phase A: each member publishes its block (already sitting at its own
    // comm-rank offset in its recvbuf); the leader is the sole reader and
    // lands it at the same offset in the leader's recvbuf. Safe against the
    // phase C overwrite of the member's whole recvbuf: that copy_get waits
    // on the leader's publish, which follows the leader's phase A reads.
    if (!node_leader) {
        s.copy_pub(kIntraUp + my_mrank,
                   at_offset(recvbuf, static_cast<long long>(r) * recvcount, recvtype), recvcount,
                   recvtype, {mem.front()});
    } else {
        for (int i = 1; i < m; ++i) {
            int const w = mem[static_cast<std::size_t>(i)];
            s.copy_get(kIntraUp + i, w,
                       at_offset(recvbuf, static_cast<long long>(w) * recvcount, recvtype),
                       /*src_byte_off=*/0, recvcount, recvtype);
        }
    }

    // Phase B: leader ring, identical to the unpipelined composition.
    if (node_leader && n > 1) {
        auto node_size = [&](int g) {
            return static_cast<int>(ni.members[static_cast<std::size_t>(g)].size());
        };
        std::size_t const max_bundle = static_cast<std::size_t>(ni.max_ppn) * bb;
        std::byte* cur = s.alloc(max_bundle);
        std::byte* next = s.alloc(max_bundle);
        if (bb > 0) {
            auto const* members = &ni.members[static_cast<std::size_t>(ni.my_node)];
            s.local([cur, members, recvbuf, recvcount, recvtype, bb]() {
                for (std::size_t i = 0; i < members->size(); ++i) {
                    recvtype->pack(
                        at_offset(recvbuf,
                                  static_cast<long long>((*members)[i]) * recvcount, recvtype),
                        recvcount, cur + i * bb);
                }
                return MPI_SUCCESS;
            });
        }
        int const right = (ni.my_node + 1) % n;
        int const left = (ni.my_node - 1 + n) % n;
        std::vector<int> const leaders = leader_map(ni);
        for (int k = 0; k < n - 1; ++k) {
            int const send_node = (ni.my_node - k + n) % n;
            int const recv_node = (ni.my_node - k - 1 + n) % n;
            int const slot = s.post(leaders[static_cast<std::size_t>(left)], kInter + k, next,
                                    static_cast<int>(static_cast<std::size_t>(node_size(recv_node)) * bb),
                                    MPI_BYTE);
            s.send(leaders[static_cast<std::size_t>(right)], kInter + k, cur,
                   static_cast<int>(static_cast<std::size_t>(node_size(send_node)) * bb),
                   MPI_BYTE);
            s.wait(slot);
            if (bb > 0) {
                auto const* members = &ni.members[static_cast<std::size_t>(recv_node)];
                s.local([next, members, recvbuf, recvcount, recvtype, bb]() {
                    for (std::size_t i = 0; i < members->size(); ++i) {
                        recvtype->unpack(
                            next + i * bb, recvcount,
                            at_offset(recvbuf,
                                      static_cast<long long>((*members)[i]) * recvcount,
                                      recvtype));
                    }
                    return MPI_SUCCESS;
                });
            }
            std::swap(cur, next);
        }
    }

    // Phase C: one publish of the assembled result, m-1 concurrent reads.
    if (m > 1) {
        if (node_leader) {
            std::vector<int> const readers(mem.begin() + 1, mem.end());
            s.copy_pub(kIntraDown, recvbuf, p * recvcount, recvtype, readers);
        } else {
            s.copy_get(kIntraDown, mem.front(), recvbuf, /*src_byte_off=*/0, p * recvcount,
                       recvtype);
        }
    }
    s.drain_published();
    return MPI_SUCCESS;
}

/// "2D" zero-copy composition, uniform node shapes only (min_ppn ==
/// max_ppn): the m-th members of all nodes form m concurrent inter-node
/// rings moving single blocks (B bytes per hop instead of the leader ring's
/// m·B packed bundles) directly into their final recvbuf offsets, then each
/// member publishes its assembled ring column once and loads the other m-1
/// columns — (m-1)·n strided reads — straight out of its same-node peers'
/// recvbufs. Writes during the publish window touch only columns no reader
/// of this rank's cell loads, so the concurrency is race-free.
int build_hier_allgather_shm2d(Schedule& s, void* recvbuf, int recvcount, MPI_Datatype recvtype) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const p = s.size();
    int const r = s.rank();

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const mi = my_member_index(ni, r);

    // Phase B directly (no gather phase: every block already sits at its
    // final offset): ring among the mi-th members of all nodes. Concurrent
    // rings share tags kInter + k but are disjoint rank sets, so matching
    // is unambiguous.
    if (n > 1) {
        int const right = ni.members[static_cast<std::size_t>((ni.my_node + 1) % n)]
                                    [static_cast<std::size_t>(mi)];
        int const left = ni.members[static_cast<std::size_t>((ni.my_node - 1 + n) % n)]
                                   [static_cast<std::size_t>(mi)];
        for (int k = 0; k < n - 1; ++k) {
            int const send_node = (ni.my_node - k + n) % n;
            int const recv_node = (ni.my_node - k - 1 + n) % n;
            int const sw = ni.members[static_cast<std::size_t>(send_node)]
                                     [static_cast<std::size_t>(mi)];
            int const rw = ni.members[static_cast<std::size_t>(recv_node)]
                                     [static_cast<std::size_t>(mi)];
            int const slot =
                s.post(left, kInter + k,
                       at_offset(recvbuf, static_cast<long long>(rw) * recvcount, recvtype),
                       recvcount, recvtype);
            s.send(right, kInter + k,
                   at_offset(recvbuf, static_cast<long long>(sw) * recvcount, recvtype),
                   recvcount, recvtype);
            s.wait(slot);
        }
    }

    // Phase C: column share within the node. Reader lists repeat each peer
    // n times — one expected get per block of this rank's column.
    if (m > 1) {
        std::vector<int> readers;
        readers.reserve(static_cast<std::size_t>(m - 1) * static_cast<std::size_t>(n));
        for (int i = 0; i < m; ++i) {
            if (i == mi) continue;
            for (int g = 0; g < n; ++g) readers.push_back(mem[static_cast<std::size_t>(i)]);
        }
        s.copy_pub(kIntraUp + mi, recvbuf, p * recvcount, recvtype, readers);
        for (int i = 0; i < m; ++i) {
            if (i == mi) continue;
            for (int g = 0; g < n; ++g) {
                int const w = ni.members[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)];
                s.copy_get(kIntraUp + i, mem[static_cast<std::size_t>(i)],
                           at_offset(recvbuf, static_cast<long long>(w) * recvcount, recvtype),
                           static_cast<long long>(w) * recvcount *
                               static_cast<long long>(recvtype->extent),
                           recvcount, recvtype);
            }
        }
        s.drain_published();
    }
    return MPI_SUCCESS;
}

}  // namespace

int build_hier_allgather(Schedule& s, void* recvbuf, int recvcount, MPI_Datatype recvtype) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    std::size_t const bb =
        static_cast<std::size_t>(recvcount) * static_cast<std::size_t>(recvtype->size);
    auto const t = machine_of(c);
    auto const shape = shape_of(ni);
    // The model segments by bytes; emission additionally clamps to the
    // element count (no empty segments). For blocks with fewer elements
    // than the model's segment count the pipelined cost below was priced
    // with more segments than get emitted — at such tiny sizes the two
    // compositions' costs converge, so the decision error is bounded and
    // correctness is unaffected.
    int const nseg = clamp_segments_to_count(
        static_cast<int>(bench::model::allgather_hier_segments(
            t, shape, static_cast<double>(s.size()), static_cast<double>(bb))),
        recvcount);
    bool pipelined = nseg > 1;
    if (pipelined && !segment_forced()) {
        pipelined = bench::model::allgather_hier_pipelined(t, shape,
                                                           static_cast<double>(s.size()),
                                                           static_cast<double>(bb)) <
                    bench::model::allgather_hier_unpipelined(t, shape,
                                                            static_cast<double>(s.size()),
                                                            static_cast<double>(bb));
    }
    // Zero-copy compositions, keyed on the same formulas the registry
    // prices hierarchical allgather with. A segment-size pin keeps the
    // pipelined p2p composition so segmentation harnesses stay exercised.
    if (shm::enabled() && !(segment_forced() && nseg > 1)) {
        double const pd = static_cast<double>(s.size());
        double const c_leader =
            bench::model::allgather_hier_leader_shm(t, shape, pd, static_cast<double>(bb));
        double const c_2d = ni.min_ppn == ni.max_ppn
                                ? bench::model::allgather_hier_shm2d(t, shape, pd,
                                                                    static_cast<double>(bb))
                                : std::numeric_limits<double>::infinity();
        double const c_p2p =
            std::min(bench::model::allgather_hier_unpipelined(t, shape, pd,
                                                              static_cast<double>(bb)),
                     bench::model::allgather_hier_pipelined(t, shape, pd,
                                                            static_cast<double>(bb)));
        if (std::min(c_leader, c_2d) < c_p2p) {
            return c_2d <= c_leader
                       ? build_hier_allgather_shm2d(s, recvbuf, recvcount, recvtype)
                       : build_hier_allgather_leader_shm(s, recvbuf, recvcount, recvtype);
        }
    }
    return pipelined ? build_hier_allgather_pipelined(s, recvbuf, recvcount, recvtype, nseg)
                     : build_hier_allgather_unpipelined(s, recvbuf, recvcount, recvtype);
}

// ---------------------------------------------------------------------------
// Alltoall: members ship their whole send row to the leader, leaders
// exchange one packed bundle per node pair (pairwise order), and leaders
// ship each member its reassembled result row. Aggregation trades bandwidth
// on the leader for an (n-1)-message network phase, so the cost model picks
// this in the latency-bound regime. As with allgather, a segment-pipelined
// composition interleaves the three phases per segment of the
// per-destination block; build_hier_alltoall picks by the shared cost model
// (or the segment-size pin).
// ---------------------------------------------------------------------------

namespace {

int build_hier_alltoall_unpipelined(Schedule& s, void const* sendbuf, int sendcount,
                                    MPI_Datatype sendtype, void* recvbuf, int recvcount,
                                    MPI_Datatype recvtype) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const p = s.size();
    int const r = s.rank();
    std::size_t const bb =
        static_cast<std::size_t>(sendcount) * static_cast<std::size_t>(sendtype->size);
    std::size_t const row = static_cast<std::size_t>(p) * bb;

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);
    bool const node_leader = mem.front() == r;

    if (!node_leader) {
        // Send the full row up, receive the reassembled result row back.
        s.send(mem.front(), kIntraUp, sendbuf, p * sendcount, sendtype);
        s.recv(mem.front(), kIntraDown, recvbuf, p * recvcount, recvtype);
        return MPI_SUCCESS;
    }

    // rows[i]: member i's packed send row (blocks by destination comm rank).
    std::byte* const rows = s.alloc(static_cast<std::size_t>(m) * row);
    if (bb > 0) {
        // Own row (member 0), packed as a schedule step for composability.
        s.local([rows, sendbuf, sendcount, sendtype, p]() {
            sendtype->pack(sendbuf, p * sendcount, rows);
            return MPI_SUCCESS;
        });
    }
    for (int i = 1; i < m; ++i) {
        s.recv(mem[static_cast<std::size_t>(i)], kIntraUp,
               rows + static_cast<std::size_t>(i) * row, static_cast<int>(row), MPI_BYTE);
    }

    // Inter phase: pairwise bundle exchange. The bundle for node d holds
    // blocks (sender member i, destination member w) in that order.
    std::vector<int> const leaders = leader_map(ni);
    std::vector<std::byte*> inbound(static_cast<std::size_t>(n), nullptr);
    for (int i = 1; i < n; ++i) {
        int const dst = (ni.my_node + i) % n;
        int const src = (ni.my_node - i + n) % n;
        auto const& dmem = ni.members[static_cast<std::size_t>(dst)];
        auto const& smem = ni.members[static_cast<std::size_t>(src)];
        std::size_t const out_bytes = static_cast<std::size_t>(m) * dmem.size() * bb;
        std::size_t const in_bytes = smem.size() * static_cast<std::size_t>(m) * bb;
        std::byte* const out = s.alloc(out_bytes);
        std::byte* const in = s.alloc(in_bytes);
        inbound[static_cast<std::size_t>(src)] = in;
        int const slot = s.post(leaders[static_cast<std::size_t>(src)], kInter + i, in,
                                static_cast<int>(in_bytes), MPI_BYTE);
        if (bb > 0) {
            auto const* dptr = &dmem;
            s.local([out, rows, dptr, row, bb, m]() {
                std::size_t pos = 0;
                for (int i2 = 0; i2 < m; ++i2) {
                    for (int w : *dptr) {
                        std::memcpy(out + pos,
                                    rows + static_cast<std::size_t>(i2) * row +
                                        static_cast<std::size_t>(w) * bb,
                                    bb);
                        pos += bb;
                    }
                }
                return MPI_SUCCESS;
            });
        }
        s.send(leaders[static_cast<std::size_t>(dst)], kInter + i, out,
               static_cast<int>(out_bytes), MPI_BYTE);
        s.wait(slot);
    }

    // Reassemble one result row per member (blocks ordered by source comm
    // rank, exactly the alltoall receive layout), ship it down, and unpack
    // our own. Runs after every phase B wait by program order.
    NodeInfo const* const nip = &ni;
    for (int w = 0; w < m; ++w) {
        std::byte* const out_row = s.alloc(row);
        int const dest_comm_rank = mem[static_cast<std::size_t>(w)];
        if (bb > 0) {
            s.local([out_row, nip, inbound, rows, row, bb, w, p, m, dest_comm_rank]() {
                for (int q = 0; q < p; ++q) {
                    int const g = nip->node_of[static_cast<std::size_t>(q)];
                    auto const& gm = nip->members[static_cast<std::size_t>(g)];
                    std::size_t j = 0;
                    while (gm[j] != q) ++j;  // q's index within its node
                    std::byte const* const src =
                        g == nip->my_node
                            // Member j's row, block destined to comm rank
                            // `dest_comm_rank` (rows are indexed by
                            // destination comm rank).
                            ? rows + j * row + static_cast<std::size_t>(dest_comm_rank) * bb
                            // Remote bundle order: (sender member j,
                            // destination member index w).
                            : inbound[static_cast<std::size_t>(g)] +
                                  (j * static_cast<std::size_t>(m) + static_cast<std::size_t>(w)) *
                                      bb;
                    std::memcpy(out_row + static_cast<std::size_t>(q) * bb, src, bb);
                }
                return MPI_SUCCESS;
            });
        }
        if (w == my_mrank) {
            if (bb > 0) {
                s.local([out_row, recvbuf, recvcount, recvtype, p]() {
                    recvtype->unpack(out_row, p * recvcount, recvbuf);
                    return MPI_SUCCESS;
                });
            }
        } else {
            s.send(dest_comm_rank, kIntraDown, out_row, static_cast<int>(row), MPI_BYTE);
        }
    }
    return MPI_SUCCESS;
}

/// Segment-pipelined composition over segments of the per-destination
/// block. Per segment k: members pack and ship the row segment (one slice
/// per destination comm rank) to the leader, leaders exchange per-node-pair
/// bundle segments pairwise, and leaders ship each member its reassembled
/// result-row segment. Requires element-aligned segmentation on both sides
/// (the dispatcher gates on sendcount == recvcount with equal type sizes).
int build_hier_alltoall_pipelined(Schedule& s, void const* sendbuf, int sendcount,
                                  MPI_Datatype sendtype, void* recvbuf, int recvcount,
                                  MPI_Datatype recvtype, int nseg) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    int const n = ni.num_nodes();
    int const p = s.size();
    int const r = s.rank();
    std::size_t const esz = static_cast<std::size_t>(sendtype->size);
    std::size_t const sb_max = static_cast<std::size_t>(max_seg_len(sendcount, nseg)) * esz;
    std::size_t const rowseg_max = static_cast<std::size_t>(p) * sb_max;

    auto const& mem = ni.members[static_cast<std::size_t>(ni.my_node)];
    int const m = static_cast<int>(mem.size());
    int const my_mrank = my_member_index(ni, r);
    bool const node_leader = mem.front() == r;
    NodeInfo const* const nip = &ni;

    if (!node_leader) {
        // One shared row buffer each way, reused across segments: the
        // upstream send copies into the transport eagerly, and the
        // downstream unpack completes before the next segment's receive.
        std::byte* const up = s.alloc(rowseg_max);
        std::byte* const down = s.alloc(rowseg_max);
        compose_segments(sendcount, nseg, [&](int k, long long off, int len) {
            std::size_t const sb = static_cast<std::size_t>(len) * esz;
            if (sb > 0) {
                s.local([up, sendbuf, sendcount, sendtype, off, len, sb, p]() {
                    for (int q = 0; q < p; ++q) {
                        sendtype->pack(
                            at_offset(sendbuf, static_cast<long long>(q) * sendcount + off,
                                      sendtype),
                            len, up + static_cast<std::size_t>(q) * sb);
                    }
                    return MPI_SUCCESS;
                });
            }
            s.send(mem.front(), kIntraUp + k, up,
                   static_cast<int>(static_cast<std::size_t>(p) * sb), MPI_BYTE);
        });
        compose_segments(recvcount, nseg, [&](int k, long long off, int len) {
            std::size_t const sb = static_cast<std::size_t>(len) * esz;
            s.recv(mem.front(), kIntraDown + k, down,
                   static_cast<int>(static_cast<std::size_t>(p) * sb), MPI_BYTE);
            if (sb > 0) {
                s.local([down, recvbuf, recvcount, recvtype, off, len, sb, p]() {
                    for (int q = 0; q < p; ++q) {
                        recvtype->unpack(
                            down + static_cast<std::size_t>(q) * sb, len,
                            at_offset(recvbuf, static_cast<long long>(q) * recvcount + off,
                                      recvtype));
                    }
                    return MPI_SUCCESS;
                });
            }
        });
        return MPI_SUCCESS;
    }

    // Leader scratch, all reused across segments. rows: one packed row
    // segment per member (stride rowseg_max, blocks by destination comm
    // rank); per-pair in/out bundles; one result-row buffer per member.
    std::byte* const rows = s.alloc(static_cast<std::size_t>(m) * rowseg_max);
    std::vector<int> const leaders = leader_map(ni);
    std::vector<std::byte*> outb(static_cast<std::size_t>(n), nullptr);
    std::vector<std::byte*> inb(static_cast<std::size_t>(n), nullptr);
    for (int i = 1; i < n; ++i) {
        int const dst = (ni.my_node + i) % n;
        int const src = (ni.my_node - i + n) % n;
        outb[static_cast<std::size_t>(dst)] = s.alloc(
            static_cast<std::size_t>(m) * ni.members[static_cast<std::size_t>(dst)].size() *
            sb_max);
        inb[static_cast<std::size_t>(src)] = s.alloc(
            ni.members[static_cast<std::size_t>(src)].size() * static_cast<std::size_t>(m) *
            sb_max);
    }
    std::vector<std::byte*> out_rows(static_cast<std::size_t>(m), nullptr);
    for (int w = 0; w < m; ++w) out_rows[static_cast<std::size_t>(w)] = s.alloc(rowseg_max);

    compose_segments(sendcount, nseg, [&](int k, long long off, int len) {
        std::size_t const sb = static_cast<std::size_t>(len) * esz;
        std::size_t const rowseg = static_cast<std::size_t>(p) * sb;
        // Phase A: own row segment packed in place; member row segments
        // received as packed bytes.
        if (sb > 0) {
            s.local([rows, sendbuf, sendcount, sendtype, off, len, sb, p]() {
                for (int q = 0; q < p; ++q) {
                    sendtype->pack(
                        at_offset(sendbuf, static_cast<long long>(q) * sendcount + off, sendtype),
                        len, rows + static_cast<std::size_t>(q) * sb);
                }
                return MPI_SUCCESS;
            });
        }
        for (int i = 1; i < m; ++i) {
            s.recv(mem[static_cast<std::size_t>(i)], kIntraUp + k,
                   rows + static_cast<std::size_t>(i) * rowseg_max, static_cast<int>(rowseg),
                   MPI_BYTE);
        }

        // Phase B: pairwise bundle-segment exchange. Tag kInter + i is
        // reused across segments (FIFO per source; both sides emit segments
        // in ascending order).
        for (int i = 1; i < n; ++i) {
            int const dst = (ni.my_node + i) % n;
            int const src = (ni.my_node - i + n) % n;
            auto const& dmem = ni.members[static_cast<std::size_t>(dst)];
            auto const& smem = ni.members[static_cast<std::size_t>(src)];
            std::size_t const out_bytes = static_cast<std::size_t>(m) * dmem.size() * sb;
            std::size_t const in_bytes = smem.size() * static_cast<std::size_t>(m) * sb;
            std::byte* const out = outb[static_cast<std::size_t>(dst)];
            std::byte* const in = inb[static_cast<std::size_t>(src)];
            int const slot = s.post(leaders[static_cast<std::size_t>(src)], kInter + i, in,
                                    static_cast<int>(in_bytes), MPI_BYTE);
            if (sb > 0) {
                auto const* dptr = &dmem;
                s.local([out, rows, dptr, rowseg_max, sb, m]() {
                    std::size_t pos = 0;
                    for (int i2 = 0; i2 < m; ++i2) {
                        for (int w : *dptr) {
                            std::memcpy(out + pos,
                                        rows + static_cast<std::size_t>(i2) * rowseg_max +
                                            static_cast<std::size_t>(w) * sb,
                                        sb);
                            pos += sb;
                        }
                    }
                    return MPI_SUCCESS;
                });
            }
            s.send(leaders[static_cast<std::size_t>(dst)], kInter + i, out,
                   static_cast<int>(out_bytes), MPI_BYTE);
            s.wait(slot);
        }

        // Phase C: reassemble each member's result-row segment (blocks by
        // source comm rank) and ship it down; unpack our own.
        for (int w = 0; w < m; ++w) {
            std::byte* const out_row = out_rows[static_cast<std::size_t>(w)];
            int const dest_comm_rank = mem[static_cast<std::size_t>(w)];
            if (sb > 0) {
                s.local([out_row, nip, inb, rows, rowseg_max, sb, w, p, m, dest_comm_rank]() {
                    for (int q = 0; q < p; ++q) {
                        int const g = nip->node_of[static_cast<std::size_t>(q)];
                        auto const& gm = nip->members[static_cast<std::size_t>(g)];
                        std::size_t j = 0;
                        while (gm[j] != q) ++j;  // q's index within its node
                        std::byte const* const src =
                            g == nip->my_node
                                ? rows + j * rowseg_max +
                                      static_cast<std::size_t>(dest_comm_rank) * sb
                                : inb[static_cast<std::size_t>(g)] +
                                      (j * static_cast<std::size_t>(m) +
                                       static_cast<std::size_t>(w)) *
                                          sb;
                        std::memcpy(out_row + static_cast<std::size_t>(q) * sb, src, sb);
                    }
                    return MPI_SUCCESS;
                });
            }
            if (w == my_mrank) {
                if (sb > 0) {
                    s.local([out_row, recvbuf, recvcount, recvtype, off, len, sb, p]() {
                        for (int q = 0; q < p; ++q) {
                            recvtype->unpack(
                                out_row + static_cast<std::size_t>(q) * sb, len,
                                at_offset(recvbuf, static_cast<long long>(q) * recvcount + off,
                                          recvtype));
                        }
                        return MPI_SUCCESS;
                    });
                }
            } else {
                s.send(dest_comm_rank, kIntraDown + k, out_row, static_cast<int>(rowseg),
                       MPI_BYTE);
            }
        }
    });
    return MPI_SUCCESS;
}

}  // namespace

int build_hier_alltoall(Schedule& s, void const* sendbuf, int sendcount, MPI_Datatype sendtype,
                        void* recvbuf, int recvcount, MPI_Datatype recvtype) {
    MPI_Comm const c = s.comm();
    NodeInfo const& ni = topo::node_info(c);
    std::size_t const bb =
        static_cast<std::size_t>(sendcount) * static_cast<std::size_t>(sendtype->size);
    // Element-aligned segmentation needs the same block shape on both
    // sides; mixed-shape (but signature-compatible) type pairs keep the
    // unpipelined composition. As in build_hier_allgather, the element
    // clamp below can emit fewer segments than the model priced for tiny
    // blocks — bounded decision error, no correctness impact.
    bool pipelined = sendcount == recvcount && sendtype->size == recvtype->size;
    int nseg = 1;
    if (pipelined) {
        auto const t = machine_of(c);
        auto const shape = shape_of(ni);
        nseg = clamp_segments_to_count(
            static_cast<int>(bench::model::alltoall_hier_segments(
                t, shape, static_cast<double>(s.size()), static_cast<double>(bb))),
            sendcount);
        pipelined = nseg > 1;
        if (pipelined && !segment_forced()) {
            pipelined = bench::model::alltoall_hier_pipelined(t, shape,
                                                              static_cast<double>(s.size()),
                                                              static_cast<double>(bb)) <
                        bench::model::alltoall_hier_unpipelined(t, shape,
                                                               static_cast<double>(s.size()),
                                                               static_cast<double>(bb));
        }
    }
    return pipelined ? build_hier_alltoall_pipelined(s, sendbuf, sendcount, sendtype, recvbuf,
                                                     recvcount, recvtype, nseg)
                     : build_hier_alltoall_unpipelined(s, sendbuf, sendcount, sendtype, recvbuf,
                                                       recvcount, recvtype);
}

}  // namespace xmpi::detail::alg
