/// @file fold.hpp
/// @brief Build-time bookkeeping for rank-order reduction folds shared by
/// the reduce and allreduce schedule builders.
#pragma once

#include <cstring>
#include <vector>

#include "schedule.hpp"

namespace xmpi::detail::alg {

/// Build-time fold bookkeeping: `cur` tracks the buffer holding the
/// accumulated prefix. Folding a new right operand emits an apply_op step
/// whose result lands in the operand's buffer (apply_op stores into
/// `inout`), so the accumulator migrates and the vacated buffer returns to
/// the free list for the next receive.
struct FoldChain {
    FoldChain(Schedule& sched, MPI_Op o, int c, MPI_Datatype t)
        : s(sched), op(o), count(c), type(t) {}

    Schedule& s;
    MPI_Op op;
    int count;
    MPI_Datatype type;
    std::byte* cur = nullptr;
    std::vector<std::byte*> free;

    /// Zero-count reductions have no payload (every scratch allocation is
    /// null): the message steps still run for matching hygiene, but no
    /// local fold/copy steps are needed or emitted.
    bool empty() const { return count == 0; }

    std::byte* take() {
        if (empty()) return nullptr;
        std::byte* const t = free.back();
        free.pop_back();
        return t;
    }

    void fold_right(std::byte* operand) {
        if (empty()) return;
        if (cur != nullptr) {
            std::byte* const left = cur;
            s.local([op = op, left, operand, count = count, type = type]() {
                apply_op(op, left, operand, count, type);
                return MPI_SUCCESS;
            });
            free.push_back(cur);
        }
        cur = operand;
    }

    void emit_copy_out(void* dst, std::size_t bytes) {
        if (empty() || bytes == 0) return;
        std::byte* const result = cur;
        s.local([dst, result, bytes]() {
            std::memcpy(dst, result, bytes);
            return MPI_SUCCESS;
        });
    }
};

}  // namespace xmpi::detail::alg
