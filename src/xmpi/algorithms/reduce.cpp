/// @file reduce.cpp
/// @brief Reduce algorithms. Both preserve rank-order combine semantics so
/// non-commutative (associative-only) operations are exact:
///  - flat: root drains contributions in ascending rank order, interleaving
///    its own operand at its rank position (the PR-1 i-variant fold);
///  - binomial: tree over true ranks toward rank 0 — every internal node
///    combines contiguous, adjacent rank ranges (a bracketing of
///    0 op 1 op ... op p-1) — followed by a single transfer 0 -> root.
#include <cstring>

#include "algorithms.hpp"
#include "fold.hpp"

namespace xmpi::detail::alg {
namespace {

void build_flat(Schedule& s, void const* input, void* recvbuf, int count, MPI_Datatype type,
                MPI_Op op, int root) {
    int const p = s.size();
    int const r = s.rank();
    if (r != root) {
        s.send(root, 0, input, count, type);
        return;
    }
    std::size_t const bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(type->extent);
    std::byte* const own = s.alloc(bytes);
    // Snapshot as a schedule step (not at build time) so composed phases
    // can feed execution-produced buffers; see build_flat in allreduce.cpp.
    if (bytes > 0) {
        s.local([own, input, bytes]() {
            std::memcpy(own, input, bytes);
            return MPI_SUCCESS;
        });
    }
    FoldChain chain{s, op, count, type};
    // Two spare buffers suffice: one holds the accumulator, the other
    // receives the next contribution; folds swap their roles.
    chain.free = {s.alloc(bytes), s.alloc(bytes)};
    for (int i = 0; i < p; ++i) {
        if (i == r) {
            chain.fold_right(own);
            continue;
        }
        std::byte* const target = chain.take();
        s.recv(i, 0, target, count, type);
        chain.fold_right(target);
    }
    chain.emit_copy_out(recvbuf, bytes);
}

}  // namespace

void append_binomial_reduce(Schedule& s, void const* input, void* recvbuf, int count,
                            MPI_Datatype type, MPI_Op op, int root, int tag_base) {
    int const p = s.size();
    int const r = s.rank();
    std::size_t const bytes =
        static_cast<std::size_t>(count) * static_cast<std::size_t>(type->extent);
    std::byte* const acc = s.alloc(bytes);
    if (bytes > 0) {
        s.local([acc, input, bytes]() {
            std::memcpy(acc, input, bytes);
            return MPI_SUCCESS;
        });
    }
    FoldChain chain{s, op, count, type};
    chain.cur = acc;
    chain.free = {s.alloc(bytes)};
    for (int mask = 1; mask < p; mask <<= 1) {
        if ((r & mask) != 0) {
            // Parent covers the adjacent rank range below ours; our
            // accumulator is its right operand.
            s.send(r - mask, tag_base, chain.cur, count, type);
            return;
        }
        if (r + mask < p) {
            std::byte* const target = chain.take();
            s.recv(r + mask, tag_base, target, count, type);
            chain.fold_right(target);
        }
    }
    // Only rank 0 reaches this point, holding the full rank-order result.
    if (root == 0) {
        chain.emit_copy_out(recvbuf, bytes);
    } else {
        s.send(root, tag_base + 1, chain.cur, count, type);
    }
}

int build_reduce(int alg, Schedule& s, void const* input, void* recvbuf, int count,
                 MPI_Datatype type, MPI_Op op, int root) {
    switch (alg) {
        case 0: build_flat(s, input, recvbuf, count, type, op, root); break;
        case 1: {
            append_binomial_reduce(s, input, recvbuf, count, type, op, root, 0);
            if (root != 0 && s.rank() == root) s.recv(0, 1, recvbuf, count, type);
            break;
        }
        case 2: return build_hier_reduce(s, input, recvbuf, count, type, op, root);
        default: return MPI_ERR_ARG;
    }
    return MPI_SUCCESS;
}

}  // namespace xmpi::detail::alg
