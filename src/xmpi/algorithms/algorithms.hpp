/// @file algorithms.hpp
/// @brief The pluggable collective-algorithm layer: per-family registries of
/// selectable algorithms (flat reference plus tree/ring/recursive-doubling/
/// Bruck/Rabenseifner variants), and the selection logic that picks one per
/// invocation from the analytic α-β cost model — overridable per family via
/// the XMPI_ALG_<FAMILY> environment variables and the XMPI_T_alg_* control
/// API in <xmpi/mpi.h>.
///
/// Every algorithm is expressed as a Schedule builder (see schedule.hpp), so
/// each one serves both the blocking collective and its generalized-request
/// i-variant. Non-commutative reductions keep rank-order (bracketing-only)
/// combine semantics in every tree variant; algorithms that cannot (ring
/// allreduce) declare needs_commutative and are skipped for such ops.
#pragma once

#include <cstddef>
#include <vector>

#include "bench/model/analytic.hpp"
#include "../tune/tune.hpp"
#include "schedule.hpp"

namespace xmpi::detail::alg {

enum class Family : int { bcast = 0, reduce, allgather, allreduce, alltoall };
inline constexpr int kFamilies = 5;

/// Registry entry for one algorithm of one collective family.
struct AlgInfo {
    char const* name;
    bool needs_pow2 = false;         ///< valid only for power-of-two comm sizes
    bool needs_commutative = false;  ///< combine order is not a rank-order bracketing
    /// Splits the element vector across ranks (reduce-scatter shapes).
    /// Builtin operations are element-wise by construction; user-defined
    /// operations may treat element groups as one logical unit (PR-1's
    /// rank-order matrix folds do), so such algorithms only apply to
    /// builtin ops.
    bool needs_elementwise = false;
    /// Modeled completion time under the two-tier machine model; `bytes` is
    /// the family's characteristic per-rank message size. Used for automatic
    /// selection. Single-tier algorithms read only the inter tier (exactly
    /// the PR-2 pricing, so selection on a flat topology is unchanged);
    /// null for hierarchical entries, whose cost depends on the operation's
    /// properties and is computed by select() via the bench::model
    /// *_hier compositions.
    double (*cost)(bench::model::TwoTier const& machine, bench::model::NodeShape const& shape,
                   double p, double bytes);
    /// Leader-based hierarchical composition: valid only when the
    /// communicator spans >= 2 nodes with >= 2 ranks on some node; for
    /// reductions with non-commutative operations additionally requires
    /// every node's members to be a contiguous comm-rank range (so the
    /// intra-then-inter fold stays a rank-order bracketing).
    bool hier = false;
};

/// The registered algorithms of `f`; index into this table identifies the
/// algorithm everywhere below. Index 0 is always the flat reference.
std::vector<AlgInfo> const& algorithms(Family f);

/// Lower-case family name as used by the control API ("bcast", ...).
char const* family_name(Family f);

/// Selects the algorithm index for one invocation on `comm`: an XMPI_T_alg
/// forced choice wins, then the XMPI_ALG_<FAMILY> environment variable, then
/// the cheapest valid algorithm under the communicator universe's configured
/// α-β machine parameters. A forced/env choice that is invalid for this
/// (p, op) combination falls back to cost-based selection among the valid
/// ones, so pinning an algorithm never breaks correctness. `elementwise`
/// is true for data movement and builtin reduction operations.
int select(Family f, MPI_Comm comm, std::size_t bytes, bool commutative, bool elementwise = true);

/// Pure cost minimization over the *single-tier* algorithms of `f` for a
/// subgroup of `p` ranks whose links all use machine `m` — how the
/// hierarchical builders choose their inter-node (and intra-node) phase
/// algorithms. Ignores the override channels: pinning applies to the
/// user-visible collective, not to phases of a composition.
int select_flat(Family f, int p, std::size_t bytes, bool commutative, bool elementwise,
                bench::model::Machine const& m);

/// run_blocking with measured-selection feedback: when tuning feedback is
/// enabled, captures the schedule's per-rank virtual-time makespan (two
/// clock reads around the run — behind the same counters infrastructure as
/// the schedule-build stats) and records it into the tune feedback table
/// under (family, comm size, `bytes`). With feedback off this is exactly
/// run_blocking.
int run_observed(Schedule& s, Family f, int alg, std::size_t bytes);

/// Testing hook: forgets the cached XMPI_ALG_* environment resolutions (and
/// re-arms the one-time unknown-name warning) so tests can exercise the env
/// channel after mutating the environment.
void reset_env_cache_for_testing();

// ---------------------------------------------------------------------------
// Schedule cache. Repeated blocking and MPI_I* collectives with identical
// arguments re-arm a cached compiled schedule (reset + fresh sequence
// number) instead of rebuilding the step program and reallocating scratch —
// the same amortization MPI_*_init offers, made transparent.
// ---------------------------------------------------------------------------

/// Cache key of one compiled schedule. Buffer addresses are part of the key
/// because schedules bind them at build time; counts/types/op/root pin the
/// step program's shape. Only builtin datatypes and builtin (or absent)
/// reduction operations are cacheable: user handles can be freed and
/// reallocated at the same address mid-process, which would alias a stale
/// entry (buffer-address reuse is harmless — schedules re-read buffers at
/// execution time).
struct SchedSpec {
    Family family{};
    int alg = 0;
    int count = 0;
    int count2 = 0;
    int root = 0;
    void const* buf1 = nullptr;
    void const* buf2 = nullptr;
    MPI_Datatype type1 = nullptr;
    MPI_Datatype type2 = nullptr;
    MPI_Op op = nullptr;

    bool operator==(SchedSpec const&) const = default;
};

/// Handle-lifetime gate: true when `spec` may be cached at all — the cache
/// is enabled and every handle in the key is a builtin singleton (derived
/// datatypes and user-defined ops can be freed and recreated at the same
/// address, which would alias a stale entry).
bool spec_cacheable(SchedSpec const& spec);

/// Cache probe: when `spec` is cacheable, the communicator's cache holds a
/// matching idle entry and the epoch is current, returns that schedule
/// reset and retagged with `seq` (counted as a hit); otherwise null.
/// Entries are dropped when the control epoch moves (XMPI_T_alg_set,
/// XMPI_T_alg_env_refresh, XMPI_T_topo_set, cache/segment control writes)
/// and under LRU pressure; an entry still referenced by an in-flight
/// nonblocking request is skipped, not reused concurrently.
std::shared_ptr<Schedule> cache_take(MPI_Comm comm, std::uint64_t seq, SchedSpec const& spec);

/// Offers a freshly built schedule to the communicator's cache (no-op when
/// `spec` is not cacheable or the cache is disabled). Evicts LRU at
/// capacity.
void cache_insert(MPI_Comm comm, SchedSpec const& spec, std::shared_ptr<Schedule> const& s);

/// Returns a ready-to-run schedule for `spec` on `comm`: a cached instance
/// when one is available, otherwise a fresh one built by `build` (counted
/// as a build) and offered to the cache. `*err` receives the builder's
/// error code (the schedule must not run on error). Inline and templated so
/// the hot path pays no std::function materialization.
template <typename Build>
std::shared_ptr<Schedule> acquire_schedule(MPI_Comm comm, std::uint64_t seq,
                                           SchedSpec const& spec, int* err, Build&& build) {
    bool const cacheable = spec_cacheable(spec);
    if (cacheable) {
        if (auto cached = cache_take(comm, seq, spec)) {
            *err = MPI_SUCCESS;
            return cached;
        }
    }
    auto s = std::make_shared<Schedule>(comm, seq);
    if (RankState* rs = tls_rank(); rs != nullptr) ++rs->counters.schedule_builds;
    trace::ev(trace::Ev::sched_build, -1, -1, 0, seq, static_cast<int>(spec.family), spec.alg);
    *err = build(*s);
    if (cacheable && *err == MPI_SUCCESS) cache_insert(comm, spec, s);
    return s;
}

/// True when the schedule cache is active (XMPI_T_sched_cache_set control,
/// then the XMPI_SCHED_CACHE environment variable, then on by default).
bool sched_cache_enabled();

/// Bumps the schedule-control epoch, invalidating every communicator's
/// cached schedules on their next use. Called by the XMPI_T alg/topo/cache/
/// segment control writes and the env refresh.
void bump_sched_epoch();

/// Re-resolves the XMPI_SEGMENT_BYTES / XMPI_SCHED_CACHE environment knobs
/// (warn-once state re-armed) and publishes the segment override to
/// bench::model::forced_segment_bytes(). Called at first use and from
/// XMPI_T_alg_env_refresh.
void refresh_tuning_env();

// ---------------------------------------------------------------------------
// Builders. Each appends the selected algorithm's step program to `s`.
// Wrapper-level normalization has already happened: `input` has MPI_IN_PLACE
// resolved, and for allgather the caller's own block is already in recvbuf.
// Returns an MPI error code (building never communicates; errors are
// argument-shaped only).
// ---------------------------------------------------------------------------

int build_bcast(int alg, Schedule& s, void* buf, int count, MPI_Datatype type, int root);
int build_reduce(int alg, Schedule& s, void const* input, void* recvbuf, int count,
                 MPI_Datatype type, MPI_Op op, int root);
int build_allgather(int alg, Schedule& s, void* recvbuf, int recvcount, MPI_Datatype recvtype);
int build_allreduce(int alg, Schedule& s, void const* input, void* recvbuf, int count,
                    MPI_Datatype type, MPI_Op op);
int build_alltoall(int alg, Schedule& s, void const* sendbuf, int sendcount, MPI_Datatype sendtype,
                   void* recvbuf, int recvcount, MPI_Datatype recvtype);

// Hierarchical (leader-based) builders, defined in hierarchical.cpp. Each
// composes existing builders as sub-schedules over group scopes: an
// intra-node phase, an inter-node phase among node leaders (or slice peer
// groups), and an intra-node redistribution. Dispatched from the build_*
// functions above when the registry's "hierarchical" entry is selected.
int build_hier_bcast(Schedule& s, void* buf, int count, MPI_Datatype type, int root);
int build_hier_reduce(Schedule& s, void const* input, void* recvbuf, int count, MPI_Datatype type,
                      MPI_Op op, int root);
int build_hier_allreduce(Schedule& s, void const* input, void* recvbuf, int count,
                         MPI_Datatype type, MPI_Op op);
int build_hier_allgather(Schedule& s, void* recvbuf, int recvcount, MPI_Datatype recvtype);
int build_hier_alltoall(Schedule& s, void const* sendbuf, int sendcount, MPI_Datatype sendtype,
                        void* recvbuf, int recvcount, MPI_Datatype recvtype);

// Append-style building blocks shared between families (composites). The
// `tag_base` offsets the step tags so composed phases cannot match each
// other's messages within one collective sequence number.
void append_binomial_bcast(Schedule& s, void* buf, int count, MPI_Datatype type, int root,
                           int tag_base);
/// Rank-order-preserving binomial reduce toward rank 0 (true rank space),
/// then a transfer 0 -> root when root != 0. Uses tags [tag_base, tag_base+1].
void append_binomial_reduce(Schedule& s, void const* input, void* recvbuf, int count,
                            MPI_Datatype type, MPI_Op op, int root, int tag_base);

// ---------------------------------------------------------------------------
// Shared datatype helpers (also used by collectives.cpp).
// ---------------------------------------------------------------------------

inline std::byte* at_offset(void* base, long long elements, MPI_Datatype t) {
    return static_cast<std::byte*>(base) + elements * t->extent;
}
inline std::byte const* at_offset(void const* base, long long elements, MPI_Datatype t) {
    return static_cast<std::byte const*>(base) + elements * t->extent;
}

/// Copies `scount` elements of `stype` between (possibly differently typed
/// but signature-compatible) user buffers via pack/unpack.
inline void local_copy(void const* src, int scount, MPI_Datatype stype, void* dst,
                       MPI_Datatype rtype) {
    std::size_t const bytes =
        static_cast<std::size_t>(scount) * static_cast<std::size_t>(stype->size);
    if (bytes == 0) return;
    std::vector<std::byte> tmp(bytes);
    stype->pack(src, scount, tmp.data());
    rtype->unpack(tmp.data(), rtype->size > 0 ? static_cast<int>(bytes / rtype->size) : 0, dst);
}

/// The communicator universe's Config as a two-tier bench machine, with the
/// tuning overlay (control pins > calibrated fit > XMPI_TUNE_PROFILE)
/// applied on top. Shared by the registry's selection and the hierarchical
/// builders' inner-phase choices, so their cost decisions cannot drift.
inline bench::model::TwoTier machine_of(MPI_Comm comm) {
    auto const& cfg = comm->universe->cfg;
    bench::model::TwoTier t;
    t.inter.alpha = cfg.alpha;
    t.inter.beta = cfg.beta;
    t.inter.o = cfg.o;
    t.intra.alpha = cfg.alpha_intra;
    t.intra.beta = cfg.beta_intra;
    t.intra.o = cfg.o_intra;
    t.gamma_copy = cfg.gamma_copy;
    t.copy_sync = cfg.copy_sync;
    tune::overlay(t);
    return t;
}

/// Near-even partition of `count` elements into `k` blocks (earlier blocks
/// get the remainder); returns the k+1 exclusive prefix sums. Shared by the
/// vector-splitting allreduce builders and the hierarchical 2D composition,
/// which must agree on the block layout.
inline std::vector<long long> block_offsets(int count, int k) {
    std::vector<long long> off(static_cast<std::size_t>(k) + 1, 0);
    int const base = count / k;
    int const rem = count % k;
    for (int i = 0; i < k; ++i)
        off[static_cast<std::size_t>(i) + 1] =
            off[static_cast<std::size_t>(i)] + base + (i < rem ? 1 : 0);
    return off;
}

/// Number of pipeline segments the ring bcast splits `bytes` into — the
/// model's formula verbatim (one definition, so the builder and
/// bench::model::bcast_ring_pipelined cannot drift), which also honors the
/// XMPI_SEGMENT_BYTES / XMPI_T_segment_set override.
inline int ring_segments(std::size_t bytes) {
    return static_cast<int>(bench::model::ring_pipeline_segments(static_cast<double>(bytes)));
}

/// Clamps a model segment count to the actual element count (no empty
/// segments; count 0 collapses to one segment of nothing).
inline int clamp_segments_to_count(int nseg, int count) {
    if (count <= 0) return 1;
    return nseg > count ? count : (nseg < 1 ? 1 : nseg);
}

}  // namespace xmpi::detail::alg
