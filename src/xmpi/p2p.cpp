/// @file p2p.cpp
/// @brief Point-to-point engine: eager deposit with sender-side matching,
/// posted-receive queue, request completion (wait/test families) and probes.
///
/// Locking discipline: all matching state of rank R lives in R's mailbox and
/// is guarded by its mutex. A thread holds at most one mailbox mutex at a
/// time; cross-rank wakeups (synchronous-send completion) are issued after
/// releasing the local mutex.
#include <algorithm>
#include <chrono>

#include "internal.hpp"
#include "progress.hpp"

namespace xmpi::detail {

/// Wakes a remote rank blocked on its own mailbox (lock-empty critical
/// section avoids lost wakeups without holding two mailbox mutexes). Also
/// used by the asynchronous progress engine to wake an owner parked in
/// wait_one on an offloaded schedule.
void wake_rank(RankState* rs) {
    { std::lock_guard<std::mutex> lock(rs->mbox.m); }
    rs->mbox.cv.notify_all();
}

namespace {

bool match(int pctx, int psrc, int ptag, Envelope const& e) {
    return e.context == pctx && (psrc == MPI_ANY_SOURCE || psrc == e.src) &&
           (ptag == MPI_ANY_TAG || ptag == e.tag);
}

/// Completes a posted/created receive request from an envelope. The caller
/// holds the owner's mailbox mutex.
void fill_recv(xmpi_request_t* pr, Envelope& env) {
    std::size_t const cap =
        static_cast<std::size_t>(pr->count) * static_cast<std::size_t>(pr->type->size);
    std::size_t take = env.bytes.size();
    if (take > cap) {
        pr->error = MPI_ERR_TRUNCATE;
        take = cap;
    }
    if (pr->type->size > 0 && take > 0) {
        pr->type->unpack(env.bytes.data(), static_cast<int>(take / pr->type->size), pr->buf);
    }
    pr->status.MPI_SOURCE = env.src;
    pr->status.MPI_TAG = env.tag;
    pr->status.MPI_ERROR = pr->error;
    pr->status._bytes = static_cast<int>(env.bytes.size());
    pr->completion_vtime = env.arrival;
    pr->posted = false;
    pr->complete.store(true, std::memory_order_release);
}

void unlink_posted(RankState* self, xmpi_request_t* req) {
    auto& posted = self->mbox.posted;
    posted.erase(std::remove(posted.begin(), posted.end(), req), posted.end());
    req->posted = false;
}

/// Wall-clock accounting for blocking waits. The steady clock is sampled
/// lazily, just before the first actual sleep, so a wait whose request is
/// already complete pays zero clock reads. Accumulates into
/// RankState::wait_time_ns (the `p2p.wait_time_ns` pvar).
struct WaitTimer {
    std::chrono::steady_clock::time_point t0;
    bool slept = false;

    void about_to_sleep(int tag, std::uint64_t seq) {
        if (slept) return;
        slept = true;
        t0 = std::chrono::steady_clock::now();
        trace::ev(trace::Ev::wait_begin, -1, tag, 0, seq);
    }

    void finish(RankState* self, int tag, std::uint64_t seq) {
        if (!slept) return;
        auto const ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                                 t0)
                .count());
        self->wait_time_ns += ns;
        trace::ev(trace::Ev::wait_end, -1, tag, ns, seq);
    }
};

/// Failure/revocation predicate for a pending receive. Returns an MPI error
/// code or MPI_SUCCESS when the operation may keep waiting.
int recv_failure(Universe* u, xmpi_request_t* req) {
    if (comm_revoked(req->comm)) return MPIX_ERR_REVOKED;
    if (req->match_src != MPI_ANY_SOURCE) {
        if (rank_dead(u, req->comm->world_of(req->match_src))) return MPIX_ERR_PROC_FAILED;
    } else if (any_member_dead(req->comm)) {
        return MPIX_ERR_PROC_FAILED;
    }
    return MPI_SUCCESS;
}

void fill_empty_status(MPI_Status* status) {
    if (status != nullptr) *status = MPI_Status{MPI_PROC_NULL, MPI_ANY_TAG, MPI_SUCCESS, 0};
}

/// Consumes a completed (or errored) request: a persistent request returns
/// to the inactive-but-allocated state so it can be started again; a
/// one-shot request is destroyed.
void retire(xmpi_request_t* req) {
    if (req->persistent) {
        req->active = false;
    } else {
        delete req;
    }
}

/// True when wait/test on `req` must return immediately because the
/// persistent request has no operation in flight (MPI semantics: completion
/// calls on inactive requests succeed with an empty status).
bool inactive_persistent(xmpi_request_t const* req) {
    return req->persistent && !req->active;
}

/// Arms a receive request whose matching spec is already filled in: matches
/// the unexpected queue or links the request into the posted list. Shared
/// between post_recv (fresh one-shot receives) and MPI_Start on a
/// persistent receive (re-arming the same request object).
void attach_recv(RankState* self, xmpi_request_t* req) {
    charge_compute(self);
    std::shared_ptr<SsendToken> tok;
    {
        std::lock_guard<std::mutex> lock(self->mbox.m);
        auto& ux = self->mbox.unexpected;
        bool matched = false;
        for (auto it = ux.begin(); it != ux.end(); ++it) {
            if (match(req->context, req->match_src, req->match_tag, *it)) {
                tok = it->ssend;
                if (tok) tok->match_vtime = std::max<double>(self->vnow, it->arrival) + it->ack_alpha;
                fill_recv(req, *it);
                ux.erase(it);
                matched = true;
                break;
            }
        }
        if (!matched) {
            req->posted = true;
            self->mbox.posted.push_back(req);
        }
    }
    if (tok) {
        tok->matched.store(true, std::memory_order_release);
        wake_rank(tok->sender);
    }
}

}  // namespace

int deposit(RankState* sender, MPI_Comm comm, int context, int dest_comm_rank, int tag,
            void const* buf, int count, MPI_Datatype type,
            std::shared_ptr<SsendToken> const& sync, bool collective) {
    Universe* u = sender->universe;
    int const dest_w = comm->world_of(dest_comm_rank);
    if (rank_dead(u, dest_w)) return MPIX_ERR_PROC_FAILED;

    // Two-tier accounting: messages between ranks on the same node use the
    // intra-node (shared-memory) machine parameters.
    bool const intra = topo::same_node(u, sender->world_rank, dest_w);
    double const alpha = intra ? u->cfg.alpha_intra : u->cfg.alpha;
    double const beta = intra ? u->cfg.beta_intra : u->cfg.beta;
    double const o = intra ? u->cfg.o_intra : u->cfg.o;

    charge_compute(sender);
    sender->vnow += o;

    std::size_t const bytes = static_cast<std::size_t>(count) * static_cast<std::size_t>(type->size);
    Envelope env;
    env.context = context;
    env.src = comm->rank();
    env.tag = tag;
    env.bytes.resize(bytes);
    if (bytes > 0) type->pack(buf, count, env.bytes.data());
    env.arrival = sender->vnow + alpha + beta * static_cast<double>(bytes);
    env.ack_alpha = alpha;
    env.ssend = sync;

    if (collective) {
        sender->counters.coll_messages += 1;
        sender->counters.coll_bytes += bytes;
    } else {
        sender->counters.p2p_messages += 1;
        sender->counters.p2p_bytes += bytes;
    }
    if (intra) {
        sender->counters.intra_node_messages += 1;
        sender->counters.intra_node_bytes += bytes;
    }
    trace::ev(trace::Ev::send, dest_w, tag, bytes, static_cast<std::uint64_t>(context));

    RankState* dest = u->ranks[static_cast<std::size_t>(dest_w)].get();
    {
        std::lock_guard<std::mutex> lock(dest->mbox.m);
        auto& posted = dest->mbox.posted;
        bool matched = false;
        for (auto it = posted.begin(); it != posted.end(); ++it) {
            xmpi_request_t* pr = *it;
            if (match(pr->context, pr->match_src, pr->match_tag, env)) {
                posted.erase(it);
                fill_recv(pr, env);
                if (sync) {
                    sync->match_vtime = env.arrival + env.ack_alpha;
                    sync->matched.store(true, std::memory_order_release);
                }
                matched = true;
                break;
            }
        }
        if (!matched) dest->mbox.unexpected.push_back(std::move(env));
        dest->mbox.cv.notify_all();
    }
    // An offloaded schedule owned by the destination may be parked waiting
    // for exactly this message: nudge its progress worker (no-op when the
    // engine is off).
    progress::stimulate(u, dest_w);
    return MPI_SUCCESS;
}

int post_recv(RankState* self, MPI_Comm comm, int context, int src, int tag, void* buf, int count,
              MPI_Datatype type, bool /*collective*/, xmpi_request_t** out) {
    auto* req = new xmpi_request_t();
    req->kind = xmpi_request_t::Kind::recv;
    req->owner = self;
    req->context = context;
    req->match_src = src;
    req->match_tag = tag;
    req->buf = buf;
    req->count = count;
    req->type = type;
    req->comm = comm;
    trace::ev(trace::Ev::post, src, tag,
              static_cast<std::size_t>(count) * static_cast<std::size_t>(type->size),
              static_cast<std::uint64_t>(context));
    attach_recv(self, req);
    *out = req;
    return MPI_SUCCESS;
}

int wait_one(xmpi_request_t* req, MPI_Status* status) {
    if (req == nullptr) {
        fill_empty_status(status);
        return MPI_SUCCESS;
    }
    if (inactive_persistent(req)) {
        // Waiting on an inactive persistent request returns immediately
        // with an empty status; the request stays allocated.
        fill_empty_status(status);
        return MPI_SUCCESS;
    }
    RankState* self = tls_rank();
    Universe* u = self->universe;
    charge_compute(self);

    switch (req->kind) {
        case xmpi_request_t::Kind::send: {
            self->vnow.advance_to(req->completion_vtime);
            fill_empty_status(status);
            int const err = req->error;
            retire(req);
            return err;
        }
        case xmpi_request_t::Kind::recv: {
            auto const ctx = static_cast<std::uint64_t>(req->context);
            int const wtag = req->match_tag;
            WaitTimer timer;
            int err = MPI_SUCCESS;
            {
                std::unique_lock<std::mutex> lock(self->mbox.m);
                while (!req->complete.load(std::memory_order_acquire)) {
                    err = recv_failure(u, req);
                    if (err != MPI_SUCCESS) {
                        unlink_posted(self, req);
                        break;
                    }
                    timer.about_to_sleep(wtag, ctx);
                    self->mbox.cv.wait(lock);
                }
            }
            timer.finish(self, wtag, ctx);
            if (err != MPI_SUCCESS) {
                retire(req);
                return err;
            }
            self->vnow.advance_to(req->completion_vtime);
            if (status != nullptr) *status = req->status;
            trace::ev(trace::Ev::recv_done, req->comm->world_of(req->status.MPI_SOURCE),
                      req->status.MPI_TAG, static_cast<std::uint64_t>(req->status._bytes), ctx);
            err = req->error;
            retire(req);
            return err;
        }
        case xmpi_request_t::Kind::ssend: {
            auto const ctx = static_cast<std::uint64_t>(req->context);
            WaitTimer timer;
            int err = MPI_SUCCESS;
            {
                std::unique_lock<std::mutex> lock(self->mbox.m);
                while (!req->tok->matched.load(std::memory_order_acquire)) {
                    if (comm_revoked(req->comm)) {
                        err = MPIX_ERR_REVOKED;
                        break;
                    }
                    if (rank_dead(u, req->comm->world_of(req->match_src))) {
                        err = MPIX_ERR_PROC_FAILED;
                        break;
                    }
                    timer.about_to_sleep(req->match_tag, ctx);
                    self->mbox.cv.wait(lock);
                }
            }
            timer.finish(self, req->match_tag, ctx);
            if (err == MPI_SUCCESS) self->vnow.advance_to(req->tok->match_vtime);
            fill_empty_status(status);
            retire(req);
            return err;
        }
        case xmpi_request_t::Kind::generalized: {
            using namespace std::chrono_literals;
            auto const ctx = static_cast<std::uint64_t>(req->context);
            WaitTimer timer;
            while (!req->complete.load(std::memory_order_acquire)) {
                // An offloaded schedule is driven entirely by the progress
                // engine: the app thread parks and the engine's completion
                // wakes it. Otherwise the app thread drives the schedule
                // itself — those calls are counted so the overlap tests can
                // assert the wait side did zero progress work under the
                // engine.
                if (!req->offloaded) {
                    ++self->app_progress_calls;
                    if (req->progress(req)) break;
                }
                std::unique_lock<std::mutex> lock(self->mbox.m);
                if (req->complete.load(std::memory_order_acquire)) break;
                timer.about_to_sleep(-1, ctx);
                self->mbox.cv.wait_for(lock, 200us);
            }
            timer.finish(self, -1, ctx);
            self->vnow.advance_to(req->completion_vtime);
            fill_empty_status(status);
            int const err = req->error;
            retire(req);
            return err;
        }
        case xmpi_request_t::Kind::null:
            fill_empty_status(status);
            retire(req);
            return MPI_SUCCESS;
    }
    return MPI_ERR_INTERN;
}

int test_one(xmpi_request_t* req, int* flag, MPI_Status* status) {
    if (req == nullptr) {
        *flag = 1;
        fill_empty_status(status);
        return MPI_SUCCESS;
    }
    if (inactive_persistent(req)) {
        *flag = 1;
        fill_empty_status(status);
        return MPI_SUCCESS;
    }
    RankState* self = tls_rank();
    Universe* u = self->universe;
    charge_compute(self);

    auto consume_success = [&](double completion, MPI_Status const* st) {
        self->vnow.advance_to(completion);
        if (status != nullptr) {
            if (st != nullptr)
                *status = *st;
            else
                fill_empty_status(status);
        }
        *flag = 1;
    };

    switch (req->kind) {
        case xmpi_request_t::Kind::send: {
            consume_success(req->completion_vtime, nullptr);
            int const err = req->error;
            retire(req);
            return err;
        }
        case xmpi_request_t::Kind::recv: {
            auto recv_done_ev = [&] {
                trace::ev(trace::Ev::recv_done, req->comm->world_of(req->status.MPI_SOURCE),
                          req->status.MPI_TAG, static_cast<std::uint64_t>(req->status._bytes),
                          static_cast<std::uint64_t>(req->context));
            };
            if (req->complete.load(std::memory_order_acquire)) {
                consume_success(req->completion_vtime, &req->status);
                recv_done_ev();
                int const err = req->error;
                retire(req);
                return err;
            }
            int err;
            {
                std::lock_guard<std::mutex> lock(self->mbox.m);
                if (req->complete.load(std::memory_order_acquire)) {
                    // raced with a sender; fall through below
                    err = MPI_SUCCESS;
                } else {
                    err = recv_failure(u, req);
                    if (err != MPI_SUCCESS) unlink_posted(self, req);
                }
            }
            if (req->complete.load(std::memory_order_acquire)) {
                consume_success(req->completion_vtime, &req->status);
                recv_done_ev();
                int const e = req->error;
                retire(req);
                return e;
            }
            if (err != MPI_SUCCESS) {
                *flag = 1;  // completed in error
                if (status != nullptr) fill_empty_status(status);
                retire(req);
                return err;
            }
            *flag = 0;
            return MPI_SUCCESS;
        }
        case xmpi_request_t::Kind::ssend: {
            if (req->tok->matched.load(std::memory_order_acquire)) {
                consume_success(req->tok->match_vtime, nullptr);
                retire(req);
                return MPI_SUCCESS;
            }
            if (rank_dead(u, req->comm->world_of(req->match_src))) {
                *flag = 1;
                fill_empty_status(status);
                retire(req);
                return MPIX_ERR_PROC_FAILED;
            }
            *flag = 0;
            return MPI_SUCCESS;
        }
        case xmpi_request_t::Kind::generalized: {
            bool done = req->complete.load(std::memory_order_acquire);
            if (!done && !req->offloaded) {
                ++self->app_progress_calls;
                done = req->progress(req);
            }
            if (done) {
                consume_success(req->completion_vtime, nullptr);
                int const err = req->error;
                retire(req);
                return err;
            }
            *flag = 0;
            return MPI_SUCCESS;
        }
        case xmpi_request_t::Kind::null: {
            *flag = 1;
            fill_empty_status(status);
            retire(req);
            return MPI_SUCCESS;
        }
    }
    return MPI_ERR_INTERN;
}

int recv_blocking(RankState* self, MPI_Comm comm, int context, int src, int tag, void* buf,
                  int count, MPI_Datatype type, bool collective, MPI_Status* status) {
    xmpi_request_t* req = nullptr;
    int rc = post_recv(self, comm, context, src, tag, buf, count, type, collective, &req);
    if (rc != MPI_SUCCESS) return rc;
    return wait_one(req, status);
}

bool any_member_dead(MPI_Comm comm) {
    Universe* u = comm->universe;
    if (u->dead_count.load(std::memory_order_acquire) == 0) return false;
    for (int w : comm->group) {
        if (!rank_dead(u, w)) continue;
        bool acked = false;
        for (int a : comm->acked_failures) {
            if (a == w) {
                acked = true;
                break;
            }
        }
        if (!acked) return true;
    }
    return false;
}

}  // namespace xmpi::detail

// ---------------------------------------------------------------------------
// Public point-to-point API
// ---------------------------------------------------------------------------

using namespace xmpi::detail;

int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (dest == MPI_PROC_NULL) return MPI_SUCCESS;
    if (dest < 0 || dest >= comm->size()) return MPI_ERR_RANK;
    return deposit(tls_rank(), comm, comm->context, dest, tag, buf, count, type, nullptr, false);
}

int MPI_Ssend(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm) {
    MPI_Request req = MPI_REQUEST_NULL;
    if (int rc = MPI_Issend(buf, count, type, dest, tag, comm, &req); rc != MPI_SUCCESS) return rc;
    return wait_one(req, MPI_STATUS_IGNORE);
}

int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag, MPI_Comm comm,
             MPI_Status* status) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (source == MPI_PROC_NULL) {
        if (status != nullptr) *status = MPI_Status{MPI_PROC_NULL, MPI_ANY_TAG, MPI_SUCCESS, 0};
        return MPI_SUCCESS;
    }
    if (source != MPI_ANY_SOURCE && (source < 0 || source >= comm->size())) return MPI_ERR_RANK;
    return recv_blocking(tls_rank(), comm, comm->context, source, tag, buf, count, type, false,
                         status);
}

int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm,
              MPI_Request* request) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (request == nullptr) return MPI_ERR_REQUEST;
    auto* req = new xmpi_request_t();
    req->kind = xmpi_request_t::Kind::send;
    req->owner = tls_rank();
    req->comm = comm;
    if (dest != MPI_PROC_NULL) {
        req->error =
            deposit(tls_rank(), comm, comm->context, dest, tag, buf, count, type, nullptr, false);
    }
    req->completion_vtime = tls_rank()->vnow;
    req->complete.store(true, std::memory_order_release);
    *request = req;
    return req->error;
}

int MPI_Issend(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm,
               MPI_Request* request) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (request == nullptr) return MPI_ERR_REQUEST;
    if (dest == MPI_PROC_NULL) return MPI_Isend(buf, count, type, dest, tag, comm, request);
    if (dest < 0 || dest >= comm->size()) return MPI_ERR_RANK;
    auto* req = new xmpi_request_t();
    req->kind = xmpi_request_t::Kind::ssend;
    req->owner = tls_rank();
    req->comm = comm;
    req->match_src = dest;  // reused as destination for failure checks
    req->tok = std::make_shared<SsendToken>();
    req->tok->sender = tls_rank();
    int const rc = deposit(tls_rank(), comm, comm->context, dest, tag, buf, count, type, req->tok,
                           false);
    if (rc != MPI_SUCCESS) {
        delete req;
        return rc;
    }
    *request = req;
    return MPI_SUCCESS;
}

int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag, MPI_Comm comm,
              MPI_Request* request) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (request == nullptr) return MPI_ERR_REQUEST;
    if (source == MPI_PROC_NULL) {
        auto* req = new xmpi_request_t();
        req->kind = xmpi_request_t::Kind::null;
        req->owner = tls_rank();
        *request = req;
        return MPI_SUCCESS;
    }
    if (source != MPI_ANY_SOURCE && (source < 0 || source >= comm->size())) return MPI_ERR_RANK;
    return post_recv(tls_rank(), comm, comm->context, source, tag, buf, count, type, false,
                     request);
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest, int sendtag,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status) {
    MPI_Request rreq = MPI_REQUEST_NULL;
    if (int rc = MPI_Irecv(recvbuf, recvcount, recvtype, source, recvtag, comm, &rreq);
        rc != MPI_SUCCESS)
        return rc;
    if (int rc = MPI_Send(sendbuf, sendcount, sendtype, dest, sendtag, comm); rc != MPI_SUCCESS) {
        wait_one(rreq, MPI_STATUS_IGNORE);
        return rc;
    }
    return wait_one(rreq, status);
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
    int flag = 0;
    // Blocking probe: loop on Iprobe with the mailbox condition variable.
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    RankState* self = tls_rank();
    Universe* u = self->universe;
    charge_compute(self);
    std::unique_lock<std::mutex> lock(self->mbox.m);
    for (;;) {
        for (auto& env : self->mbox.unexpected) {
            if (match(comm->context, source, tag, env)) {
                if (status != nullptr) {
                    *status = MPI_Status{env.src, env.tag, MPI_SUCCESS,
                                         static_cast<int>(env.bytes.size())};
                }
                self->vnow.advance_to(env.arrival);
                return MPI_SUCCESS;
            }
        }
        if (comm_revoked(comm)) return MPIX_ERR_REVOKED;
        if (source != MPI_ANY_SOURCE && rank_dead(u, comm->world_of(source)))
            return MPIX_ERR_PROC_FAILED;
        if (source == MPI_ANY_SOURCE && any_member_dead(comm)) return MPIX_ERR_PROC_FAILED;
        self->mbox.cv.wait(lock);
    }
    (void)flag;
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (flag == nullptr) return MPI_ERR_ARG;
    RankState* self = tls_rank();
    charge_compute(self);
    std::lock_guard<std::mutex> lock(self->mbox.m);
    for (auto& env : self->mbox.unexpected) {
        if (match(comm->context, source, tag, env)) {
            // Only observable once virtually arrived; otherwise report absent
            // and charge no time (callers poll).
            *flag = 1;
            if (status != nullptr) {
                *status =
                    MPI_Status{env.src, env.tag, MPI_SUCCESS, static_cast<int>(env.bytes.size())};
            }
            self->vnow.advance_to(env.arrival);
            return MPI_SUCCESS;
        }
    }
    *flag = 0;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Request completion families
// ---------------------------------------------------------------------------

namespace {

/// Completion keeps persistent handles valid (they merely turn inactive);
/// one-shot handles are consumed and reset to MPI_REQUEST_NULL.
bool keeps_handle(MPI_Request req) { return req != MPI_REQUEST_NULL && req->persistent; }

}  // namespace

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
    if (request == nullptr) return MPI_ERR_REQUEST;
    bool const keep = keeps_handle(*request);
    int const rc = wait_one(*request, status);
    if (!keep) *request = MPI_REQUEST_NULL;
    return rc;
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
    if (request == nullptr || flag == nullptr) return MPI_ERR_REQUEST;
    if (*request == MPI_REQUEST_NULL) {
        *flag = 1;
        return MPI_SUCCESS;
    }
    bool const keep = keeps_handle(*request);
    int const rc = test_one(*request, flag, status);
    if (*flag != 0 && !keep) *request = MPI_REQUEST_NULL;
    return rc;
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
    int first_error = MPI_SUCCESS;
    for (int i = 0; i < count; ++i) {
        MPI_Status* st = statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[i];
        bool const keep = keeps_handle(requests[i]);
        int const rc = wait_one(requests[i], st);
        if (!keep) requests[i] = MPI_REQUEST_NULL;
        if (rc != MPI_SUCCESS && first_error == MPI_SUCCESS) first_error = rc;
    }
    return first_error;
}

int MPI_Testall(int count, MPI_Request* requests, int* flag, MPI_Status* statuses) {
    if (flag == nullptr) return MPI_ERR_ARG;
    // All-or-nothing semantics would require non-consuming tests; xmpi
    // implements the common pattern: report true only when every request is
    // individually complete, consuming those that are.
    int done = 0;
    for (int i = 0; i < count; ++i) {
        if (requests[i] == MPI_REQUEST_NULL) {
            ++done;
            continue;
        }
        int f = 0;
        MPI_Status* st = statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[i];
        bool const keep = keeps_handle(requests[i]);
        int const rc = test_one(requests[i], &f, st);
        if (f != 0) {
            if (!keep) requests[i] = MPI_REQUEST_NULL;
            ++done;
        }
        if (rc != MPI_SUCCESS) return rc;
    }
    *flag = done == count ? 1 : 0;
    return MPI_SUCCESS;
}

int MPI_Waitany(int count, MPI_Request* requests, int* index, MPI_Status* status) {
    using namespace std::chrono_literals;
    if (index == nullptr) return MPI_ERR_ARG;
    // Null and inactive persistent requests are ignored (MPI semantics);
    // with nothing active there is nothing to wait for.
    bool all_inert = true;
    for (int i = 0; i < count; ++i)
        all_inert = all_inert &&
                    (requests[i] == MPI_REQUEST_NULL || inactive_persistent(requests[i]));
    if (all_inert) {
        *index = MPI_UNDEFINED;
        return MPI_SUCCESS;
    }
    RankState* self = tls_rank();
    for (;;) {
        for (int i = 0; i < count; ++i) {
            if (requests[i] == MPI_REQUEST_NULL || inactive_persistent(requests[i])) continue;
            int f = 0;
            bool const keep = keeps_handle(requests[i]);
            int const rc = test_one(requests[i], &f, status);
            if (f != 0) {
                if (!keep) requests[i] = MPI_REQUEST_NULL;
                *index = i;
                return rc;
            }
        }
        std::unique_lock<std::mutex> lock(self->mbox.m);
        self->mbox.cv.wait_for(lock, 200us);
    }
}

int MPI_Testany(int count, MPI_Request* requests, int* index, int* flag, MPI_Status* status) {
    if (index == nullptr || flag == nullptr) return MPI_ERR_ARG;
    *flag = 0;
    *index = MPI_UNDEFINED;
    bool any_active = false;
    for (int i = 0; i < count; ++i) {
        if (requests[i] == MPI_REQUEST_NULL || inactive_persistent(requests[i])) continue;
        any_active = true;
        int f = 0;
        bool const keep = keeps_handle(requests[i]);
        int const rc = test_one(requests[i], &f, status);
        if (f != 0) {
            if (!keep) requests[i] = MPI_REQUEST_NULL;
            *index = i;
            *flag = 1;
            return rc;
        }
    }
    // Nothing active (all null or inactive persistent): MPI semantics are
    // flag=true with index=MPI_UNDEFINED — otherwise a poll loop over a
    // retired persistent request would spin forever.
    if (!any_active) *flag = 1;
    return MPI_SUCCESS;
}

int MPI_Waitsome(int incount, MPI_Request* requests, int* outcount, int* indices,
                 MPI_Status* statuses) {
    if (outcount == nullptr || indices == nullptr) return MPI_ERR_ARG;
    int index = MPI_UNDEFINED;
    MPI_Status st;
    int rc = MPI_Waitany(incount, requests, &index,
                         statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &st);
    if (index == MPI_UNDEFINED) {
        *outcount = MPI_UNDEFINED;
        return rc;
    }
    int n = 0;
    indices[n] = index;
    if (statuses != MPI_STATUSES_IGNORE) statuses[n] = st;
    ++n;
    // Harvest everything else already complete. Skip the request Waitany
    // just completed: a persistent one keeps its (non-null) handle and
    // would otherwise be reported twice.
    for (int i = 0; i < incount; ++i) {
        if (i == index || requests[i] == MPI_REQUEST_NULL || inactive_persistent(requests[i]))
            continue;
        int f = 0;
        MPI_Status* stp = statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[n];
        bool const keep = keeps_handle(requests[i]);
        int const rc2 = test_one(requests[i], &f, stp);
        if (f != 0) {
            if (!keep) requests[i] = MPI_REQUEST_NULL;
            indices[n++] = i;
        }
        if (rc2 != MPI_SUCCESS && rc == MPI_SUCCESS) rc = rc2;
    }
    *outcount = n;
    return rc;
}

int MPI_Request_free(MPI_Request* request) {
    if (request == nullptr) return MPI_ERR_REQUEST;
    xmpi_request_t* req = *request;
    // Freeing MPI_REQUEST_NULL is erroneous per the standard — this is what
    // makes a double free well-defined: the first free nulls the handle, the
    // second reports MPI_ERR_REQUEST instead of touching freed memory.
    if (req == nullptr) return MPI_ERR_REQUEST;
    *request = MPI_REQUEST_NULL;
    RankState* self = tls_rank();
    if (req->kind == xmpi_request_t::Kind::recv && req->posted) {
        // Cancels the pending receive, persistent or not: unlink so no
        // straggling sender can match it and write into freed storage.
        std::lock_guard<std::mutex> lock(self->mbox.m);
        unlink_posted(self, req);
    } else if (req->kind == xmpi_request_t::Kind::generalized && req->persistent && req->active &&
               !req->complete.load(std::memory_order_acquire)) {
        // A started persistent collective cannot be abandoned mid-schedule
        // (peers depend on our remaining sends); drive it to completion
        // first. Every rank freeing its started request terminates like the
        // blocking collective would.
        using namespace std::chrono_literals;
        while (!req->complete.load(std::memory_order_acquire)) {
            if (!req->offloaded) {
                ++self->app_progress_calls;
                if (req->progress(req)) break;
            }
            std::unique_lock<std::mutex> lock(self->mbox.m);
            if (req->complete.load(std::memory_order_acquire)) break;
            self->mbox.cv.wait_for(lock, 200us);
        }
    }
    delete req;
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Persistent requests: MPI_Send_init / MPI_Recv_init create *inactive*
// requests whose communication spec is frozen; MPI_Start (re)runs the
// operation, completion through the wait/test families returns the request
// to the inactive state, and MPI_Request_free releases it.
// ---------------------------------------------------------------------------

int MPI_Start(MPI_Request* request) {
    if (request == nullptr || *request == MPI_REQUEST_NULL) return MPI_ERR_REQUEST;
    xmpi_request_t* req = *request;
    // Starting a non-persistent request, or one whose previous start has not
    // completed yet, is a usage error.
    if (!req->persistent || req->active) return MPI_ERR_REQUEST;
    req->active = true;
    return req->start_fn(req);
}

int MPI_Startall(int count, MPI_Request* requests) {
    if (count > 0 && requests == nullptr) return MPI_ERR_REQUEST;
    int first_error = MPI_SUCCESS;
    for (int i = 0; i < count; ++i) {
        int const rc = MPI_Start(&requests[i]);
        if (rc != MPI_SUCCESS && first_error == MPI_SUCCESS) first_error = rc;
    }
    return first_error;
}

int MPI_Send_init(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm,
                  MPI_Request* request) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (request == nullptr) return MPI_ERR_REQUEST;
    if (dest != MPI_PROC_NULL && (dest < 0 || dest >= comm->size())) return MPI_ERR_RANK;
    auto* req = new xmpi_request_t();
    req->kind = xmpi_request_t::Kind::send;
    req->owner = tls_rank();
    req->comm = comm;
    req->persistent = true;
    req->active = false;
    req->start_fn = [buf, count, type, dest, tag, comm](xmpi_request_t* rq) -> int {
        // The transport is fully eager: a started send completes at once
        // (possibly in error). The user buffer is re-read on every start.
        rq->error = dest == MPI_PROC_NULL
                        ? MPI_SUCCESS
                        : xmpi::detail::deposit(tls_rank(), comm, comm->context, dest, tag, buf,
                                                count, type, nullptr, false);
        rq->completion_vtime = tls_rank()->vnow;
        rq->complete.store(true, std::memory_order_release);
        return MPI_SUCCESS;
    };
    *request = req;
    return MPI_SUCCESS;
}

int MPI_Recv_init(void* buf, int count, MPI_Datatype type, int source, int tag, MPI_Comm comm,
                  MPI_Request* request) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (request == nullptr) return MPI_ERR_REQUEST;
    if (source != MPI_ANY_SOURCE && source != MPI_PROC_NULL &&
        (source < 0 || source >= comm->size()))
        return MPI_ERR_RANK;
    auto* req = new xmpi_request_t();
    req->owner = tls_rank();
    req->comm = comm;
    req->persistent = true;
    req->active = false;
    if (source == MPI_PROC_NULL) {
        req->kind = xmpi_request_t::Kind::null;
        req->start_fn = [](xmpi_request_t* rq) -> int {
            rq->status = MPI_Status{MPI_PROC_NULL, MPI_ANY_TAG, MPI_SUCCESS, 0};
            rq->complete.store(true, std::memory_order_release);
            return MPI_SUCCESS;
        };
        *request = req;
        return MPI_SUCCESS;
    }
    req->kind = xmpi_request_t::Kind::recv;
    req->context = comm->context;
    req->match_src = source;
    req->match_tag = tag;
    req->buf = buf;
    req->count = count;
    req->type = type;
    req->start_fn = [](xmpi_request_t* rq) -> int {
        rq->error = MPI_SUCCESS;
        rq->status = MPI_Status{MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_SUCCESS, 0};
        rq->complete.store(false, std::memory_order_release);
        attach_recv(rq->owner, rq);
        return MPI_SUCCESS;
    };
    *request = req;
    return MPI_SUCCESS;
}
