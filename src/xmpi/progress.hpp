/// @file progress.hpp
/// @brief Opt-in asynchronous progress engine: a per-process pool of
/// progress threads that walks armed schedule tapes independently of the
/// application threads, the way a host controller walks a hardware frame
/// list. Enabled by XMPI_ASYNC_PROGRESS=1 (or the XMPI_T_progress_set
/// control, which takes precedence); thread count via XMPI_PROGRESS_THREADS.
///
/// Handoff protocol (arm -> engine -> completion):
///   1. The initiating application thread finishes building/resetting the
///      schedule, installs the generalized request, marks it `offloaded`,
///      and enqueues an (owner, schedule, request) job on the lock-free
///      inbox of the worker responsible for the owning rank (world_rank %
///      nthreads, so one schedule is only ever advanced by one thread).
///   2. The worker drains its inbox, adopts the owner's identity
///      (tls_rank() points at the owning RankState so deposits, matching,
///      virtual-time charges and counters attribute to the owner — the
///      thread-CPU compute charge is suppressed, see charge_compute), and
///      round-robins `Schedule::advance(blocking=false)` over its active
///      jobs. Stalled workers park on a condition variable re-armed by
///      `stimulate()` hooks in the p2p deposit and shm publish/ack paths.
///   3. On completion the worker drops its schedule reference *first* (so
///      the schedule-cache use_count probe and persistent restarts never
///      observe an engine reference after completion), then publishes
///      error + completion_vtime and flips `complete` with release
///      semantics, then wakes the owner's mailbox. Wait/test on the
///      application thread degenerate to an acquire load + cv park.
///
/// The offload gate keeps small schedules synchronous: handing a schedule
/// to the engine costs a real wakeup latency (Config::progress_wakeup),
/// which only pays for itself when the engine can hide at least that much
/// transfer time — schedules moving fewer than XMPI_PROGRESS_MIN_BYTES
/// payload bytes stay on the classic wait-side progress path.
#pragma once

#include <cstdint>
#include <memory>

#include "xmpi/mpi.h"

namespace xmpi::detail {
struct RankState;
struct Universe;
}  // namespace xmpi::detail

namespace xmpi::detail::alg {
class Schedule;
}  // namespace xmpi::detail::alg

namespace xmpi::detail::progress {

/// True when the asynchronous progress engine is enabled for new universes
/// (XMPI_T_progress_set control > XMPI_ASYNC_PROGRESS env > off).
bool enabled();

/// Number of progress threads a new engine spawns (XMPI_PROGRESS_THREADS,
/// clamped to [1, 16], default 1).
int thread_count();

/// Payload-byte threshold below which schedules stay synchronous
/// (XMPI_PROGRESS_MIN_BYTES; 0 offloads everything eligible).
std::uint64_t min_offload_bytes();

/// Re-reads the XMPI_ASYNC_PROGRESS / XMPI_PROGRESS_THREADS /
/// XMPI_PROGRESS_MIN_BYTES environment (warn-once state re-armed). Called
/// from XMPI_T_alg_env_refresh.
void refresh_env();

/// Starts the engine for `u` when enabled (no-op otherwise). Must run
/// before rank threads exist; pairs with stop().
void start(Universe* u);

/// Stops and joins the engine threads (no-op when none). Must run after
/// all rank threads joined and before trace/end-of-run aggregation.
void stop(Universe* u);

/// Offload gate + handoff. When the engine is running and `sched` clears
/// the synchronous-path gate, marks `req` offloaded, enqueues the job and
/// returns true — the caller must not run any inline progress. Returns
/// false when the caller should drive the schedule synchronously (engine
/// off, or schedule too small to pay the wakeup cost).
bool offload(RankState* owner, std::shared_ptr<alg::Schedule> sched, xmpi_request_t* req);

/// Wakes parked progress threads after an event they may be stalled on
/// (message deposit, shm publish/ack, rank death). One relaxed load when
/// the engine is off. `world_rank` routes the wakeup to the worker owning
/// that rank; pass -1 to wake every worker.
void stimulate(Universe* u, int world_rank);

/// True on a progress-engine thread (thread-local). charge_compute uses
/// this to suppress thread-CPU sampling against the adopted owner rank.
bool on_progress_thread();

/// Engine-global statistics (process-wide, reset when an engine starts;
/// exposed as `progress.*` pvars by the trace registry).
struct Stats {
    std::uint64_t schedules_offloaded = 0;  ///< jobs handed to the engine
    std::uint64_t schedules_kept_sync = 0;  ///< gate kept them on the app thread
    std::uint64_t steps_advanced = 0;       ///< schedule steps run on engine threads
    std::uint64_t completions = 0;          ///< schedules completed by the engine
    std::uint64_t wakeups = 0;              ///< stimulate() calls that found a parked worker
    std::uint64_t idle_parks = 0;           ///< times a worker parked with no runnable step
    std::uint64_t handoff_ns = 0;           ///< cumulative arm -> first-engine-touch latency
};
Stats stats();

/// Backend of the XMPI_T_progress_set/get control: -1 defers to the
/// environment, 0 forces the engine off, 1 forces it on (for universes
/// started after the call).
void set_forced(int v);
int get_forced();

}  // namespace xmpi::detail::progress
