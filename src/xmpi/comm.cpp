/// @file comm.cpp
/// @brief Communicator creation: context agreement is message-based (an
/// allreduce-max over the parent), group construction is an allgather of
/// (color, key) tuples — every member ends up with its own identical copy of
/// the new communicator (see internal.hpp for why copies are safe).
#include <algorithm>
#include <vector>

#include "internal.hpp"

namespace xmpi::detail {

int agree_context(MPI_Comm comm) {
    Universe* u = comm->universe;
    int const cand = u->next_context.fetch_add(4);
    int ctx = cand;
    if (comm->size() > 1) {
        if (MPI_Allreduce(&cand, &ctx, 1, MPI_INT, MPI_MAX, comm) != MPI_SUCCESS) return -1;
    }
    // Keep the global counter ahead of every agreed value.
    int expected = u->next_context.load();
    while (expected < ctx + 4 && !u->next_context.compare_exchange_weak(expected, ctx + 4)) {
    }
    return ctx;
}

}  // namespace xmpi::detail

using namespace xmpi::detail;

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (newcomm == nullptr) return MPI_ERR_ARG;
    int const ctx = agree_context(comm);
    if (ctx < 0) return MPI_ERR_INTERN;
    MPI_Comm c = make_comm(comm->universe, ctx, comm->group,
                           comm->world_of(comm->rank()));
    if (comm->topo != nullptr) c->topo = std::make_unique<TopoInfo>(*comm->topo);
    *newcomm = c;
    return MPI_SUCCESS;
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (newcomm == nullptr) return MPI_ERR_ARG;
    int const p = comm->size();
    int const r = comm->rank();
    int const ctx = agree_context(comm);
    if (ctx < 0) return MPI_ERR_INTERN;

    struct CK {
        int color;
        int key;
        int rank;
    };
    std::vector<CK> all(static_cast<std::size_t>(p));
    CK const mine{color, key, r};
    if (int rc = MPI_Allgather(&mine, static_cast<int>(sizeof(CK)), MPI_BYTE, all.data(),
                               static_cast<int>(sizeof(CK)), MPI_BYTE, comm);
        rc != MPI_SUCCESS)
        return rc;

    if (color == MPI_UNDEFINED) {
        *newcomm = MPI_COMM_NULL;
        return MPI_SUCCESS;
    }
    std::vector<CK> members;
    for (auto const& ck : all) {
        if (ck.color == color) members.push_back(ck);
    }
    std::sort(members.begin(), members.end(),
              [](CK const& a, CK const& b) { return a.key != b.key ? a.key < b.key : a.rank < b.rank; });
    std::vector<int> group;
    group.reserve(members.size());
    for (auto const& ck : members) group.push_back(comm->world_of(ck.rank));
    *newcomm = make_comm(comm->universe, ctx, std::move(group), comm->world_of(r));
    return MPI_SUCCESS;
}

int MPI_Comm_split_type(MPI_Comm comm, int split_type, int key, int /*info*/, MPI_Comm* newcomm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (newcomm == nullptr) return MPI_ERR_ARG;
    if (split_type == MPI_UNDEFINED) {
        // Still a collective: peers must not block in the allgather below.
        return MPI_Comm_split(comm, MPI_UNDEFINED, key, newcomm);
    }
    if (split_type != MPI_COMM_TYPE_SHARED) return MPI_ERR_ARG;
    // Color by the node this rank lives on; on a flat topology every rank is
    // its own node, i.e. the result is congruent with MPI_COMM_SELF.
    int const color = topo::node_info(comm).my_node;
    return MPI_Comm_split(comm, color, key, newcomm);
}

int MPI_Comm_free(MPI_Comm* comm) {
    if (comm == nullptr || *comm == nullptr) return MPI_ERR_COMM;
    if (*comm == MPI_COMM_WORLD || *comm == MPI_COMM_SELF) return MPI_ERR_COMM;
    delete *comm;
    *comm = MPI_COMM_NULL;
    return MPI_SUCCESS;
}

int MPI_Comm_compare(MPI_Comm c1, MPI_Comm c2, int* result) {
    c1 = resolve(c1);
    c2 = resolve(c2);
    if (c1 == nullptr || c2 == nullptr || result == nullptr) return MPI_ERR_COMM;
    if (c1 == c2 || c1->context == c2->context) {
        *result = MPI_IDENT;
    } else if (c1->group == c2->group) {
        *result = MPI_CONGRUENT;
    } else {
        std::vector<int> g1 = c1->group;
        std::vector<int> g2 = c2->group;
        std::sort(g1.begin(), g1.end());
        std::sort(g2.begin(), g2.end());
        *result = g1 == g2 ? MPI_SIMILAR : MPI_UNEQUAL;
    }
    return MPI_SUCCESS;
}
