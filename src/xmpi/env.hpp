/// @file env.hpp
/// @brief One validated environment-integer parser shared by every xmpi
/// env knob. Historically each subsystem rolled its own: topo.cpp's strtol
/// accepted trailing garbage and silently clamped, while XMPI_SEGMENT_BYTES
/// and XMPI_SIM_EVENT_LIMIT warned once and fell back. This helper gives
/// all call sites the strict-parse + warn-once-and-fall-back semantics:
/// a value parses only when the whole string is a base-10 integer inside
/// [min, max]; anything else emits one stderr diagnostic per variable (per
/// resolution cycle — the XMPI_T_*_env_refresh controls re-arm it) and
/// returns the caller's fallback.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace xmpi::detail::envutil {

inline std::mutex& warn_mutex() {
    static std::mutex m;
    return m;
}

inline std::set<std::string>& warned_names() {
    static std::set<std::string> s;
    return s;
}

/// True exactly once per variable name between reset_warnings() calls.
inline bool arm_warning(char const* name) {
    std::lock_guard<std::mutex> lock(warn_mutex());
    return warned_names().insert(name).second;
}

/// Re-arms the one-time diagnostics; called by the env-refresh controls so
/// a test (or a harness that legitimately mutates its environment) sees the
/// warning again on the next resolution.
inline void reset_warnings() {
    std::lock_guard<std::mutex> lock(warn_mutex());
    warned_names().clear();
}

/// Parses environment variable `name` as a strict base-10 integer within
/// [min, max]. Returns `fallback` when the variable is unset or empty;
/// when it is set but invalid (trailing garbage, not a number, out of
/// range), warns once on stderr — "xmpi: NAME="raw" <invalid_hint>" — and
/// returns `fallback`.
inline long long parse_env_int(char const* name, long long fallback, long long min_value,
                               long long max_value, char const* invalid_hint) {
    char const* env = std::getenv(name);
    if (env == nullptr || *env == '\0') return fallback;
    char* end = nullptr;
    long long const v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v >= min_value && v <= max_value) return v;
    if (arm_warning(name)) {
        std::fprintf(stderr, "xmpi: %s=\"%s\" %s\n", name, env, invalid_hint);
    }
    return fallback;
}

}  // namespace xmpi::detail::envutil
