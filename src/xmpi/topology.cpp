/// @file topology.cpp
/// @brief Distributed-graph topologies and neighborhood collectives. A graph
/// communicator is a dup of the parent carrying each rank's local adjacency
/// (sources it receives from, destinations it sends to). The exchanges are
/// built as schedules (algorithms/schedule.hpp), so each one runs both
/// blockingly and as a progressable generalized request (the MPI_Ineighbor_*
/// variants) from one code path.
#include <vector>

#include "algorithms/algorithms.hpp"
#include "internal.hpp"

using namespace xmpi::detail;

int MPI_Dist_graph_create_adjacent(MPI_Comm comm, int indegree, const int* sources,
                                   const int* /*sourceweights*/, int outdegree,
                                   const int* destinations, const int* /*destweights*/,
                                   int /*info*/, int /*reorder*/, MPI_Comm* newcomm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (newcomm == nullptr || indegree < 0 || outdegree < 0) return MPI_ERR_ARG;
    MPI_Comm c = MPI_COMM_NULL;
    if (int rc = MPI_Comm_dup(comm, &c); rc != MPI_SUCCESS) return rc;
    c->topo = std::make_unique<TopoInfo>();
    c->topo->sources.assign(sources, sources + indegree);
    c->topo->destinations.assign(destinations, destinations + outdegree);
    // Creating a topology is a collective in real MPI; model its
    // synchronization cost (the dup above already did an allreduce).
    if (int rc = MPI_Barrier(c); rc != MPI_SUCCESS) return rc;
    *newcomm = c;
    return MPI_SUCCESS;
}

int MPI_Dist_graph_neighbors_count(MPI_Comm comm, int* indegree, int* outdegree, int* weighted) {
    comm = resolve(comm);
    if (comm == nullptr || comm->topo == nullptr) return MPI_ERR_COMM;
    if (indegree != nullptr) *indegree = static_cast<int>(comm->topo->sources.size());
    if (outdegree != nullptr) *outdegree = static_cast<int>(comm->topo->destinations.size());
    if (weighted != nullptr) *weighted = 0;
    return MPI_SUCCESS;
}

int MPI_Dist_graph_neighbors(MPI_Comm comm, int maxindegree, int* sources, int* /*sourceweights*/,
                             int maxoutdegree, int* destinations, int* /*destweights*/) {
    comm = resolve(comm);
    if (comm == nullptr || comm->topo == nullptr) return MPI_ERR_COMM;
    for (int i = 0; i < maxindegree && i < static_cast<int>(comm->topo->sources.size()); ++i) {
        sources[i] = comm->topo->sources[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < maxoutdegree && i < static_cast<int>(comm->topo->destinations.size());
         ++i) {
        destinations[i] = comm->topo->destinations[static_cast<std::size_t>(i)];
    }
    return MPI_SUCCESS;
}

namespace {

/// Validation shared by every neighborhood collective.
int neighbor_entry(MPI_Comm& comm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (comm->topo == nullptr) return MPI_ERR_COMM;
    if (any_member_dead(comm)) return MPIX_ERR_PROC_FAILED;
    return MPI_SUCCESS;
}

/// Appends the neighborhood exchange step program: post one receive per
/// source, deposit one send per destination, then drain the receives.
/// Self-loops work because the receives are posted before the sends run.
void build_neighbor_exchange(alg::Schedule& s, const void* sendbuf, const int* sendcounts,
                             const int* sdispls, MPI_Datatype sendtype, void* recvbuf,
                             const int* recvcounts, const int* rdispls, MPI_Datatype recvtype) {
    auto const& topo = *s.comm()->topo;
    std::vector<int> slots;
    slots.reserve(topo.sources.size());
    for (std::size_t j = 0; j < topo.sources.size(); ++j) {
        auto* dst = static_cast<std::byte*>(recvbuf) +
                    static_cast<long long>(rdispls[j]) * recvtype->extent;
        slots.push_back(s.post(topo.sources[j], 0, dst, recvcounts[j], recvtype));
    }
    for (std::size_t i = 0; i < topo.destinations.size(); ++i) {
        auto const* src = static_cast<std::byte const*>(sendbuf) +
                          static_cast<long long>(sdispls[i]) * sendtype->extent;
        s.send(topo.destinations[i], 0, src, sendcounts[i], sendtype);
    }
    for (int slot : slots) s.wait(slot);
}

/// Uniform-count displacements for the non-v neighborhood collectives.
/// `uniform_send` keeps every send at displacement 0 (allgather semantics:
/// the same block goes to every destination).
struct NeighborCounts {
    std::vector<int> scounts, rcounts, sdispls, rdispls;

    NeighborCounts(MPI_Comm comm, int sendcount, int recvcount, bool uniform_send) {
        auto const out_n = static_cast<int>(comm->topo->destinations.size());
        auto const in_n = static_cast<int>(comm->topo->sources.size());
        scounts.assign(static_cast<std::size_t>(out_n), sendcount);
        rcounts.assign(static_cast<std::size_t>(in_n), recvcount);
        sdispls.assign(static_cast<std::size_t>(out_n), 0);
        rdispls.assign(static_cast<std::size_t>(in_n), 0);
        if (!uniform_send) {
            for (int i = 0; i < out_n; ++i) sdispls[static_cast<std::size_t>(i)] = i * sendcount;
        }
        for (int i = 0; i < in_n; ++i) rdispls[static_cast<std::size_t>(i)] = i * recvcount;
    }
};

}  // namespace

int MPI_Neighbor_alltoallv(const void* sendbuf, const int* sendcounts, const int* sdispls,
                           MPI_Datatype sendtype, void* recvbuf, const int* recvcounts,
                           const int* rdispls, MPI_Datatype recvtype, MPI_Comm comm) {
    if (int rc = neighbor_entry(comm); rc != MPI_SUCCESS) return rc;
    alg::Schedule s(comm, comm->coll_seq++);
    build_neighbor_exchange(s, sendbuf, sendcounts, sdispls, sendtype, recvbuf, recvcounts,
                            rdispls, recvtype);
    return alg::run_blocking(s);
}

int MPI_Neighbor_alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                          int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
    if (int rc = neighbor_entry(comm); rc != MPI_SUCCESS) return rc;
    NeighborCounts const nc(comm, sendcount, recvcount, /*uniform_send=*/false);
    alg::Schedule s(comm, comm->coll_seq++);
    build_neighbor_exchange(s, sendbuf, nc.scounts.data(), nc.sdispls.data(), sendtype, recvbuf,
                            nc.rcounts.data(), nc.rdispls.data(), recvtype);
    return alg::run_blocking(s);
}

int MPI_Neighbor_allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                           void* recvbuf, int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
    if (int rc = neighbor_entry(comm); rc != MPI_SUCCESS) return rc;
    NeighborCounts const nc(comm, sendcount, recvcount, /*uniform_send=*/true);
    alg::Schedule s(comm, comm->coll_seq++);
    build_neighbor_exchange(s, sendbuf, nc.scounts.data(), nc.sdispls.data(), sendtype, recvbuf,
                            nc.rcounts.data(), nc.rdispls.data(), recvtype);
    return alg::run_blocking(s);
}

int MPI_Ineighbor_alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                           void* recvbuf, int recvcount, MPI_Datatype recvtype, MPI_Comm comm,
                           MPI_Request* request) {
    if (request == nullptr) return MPI_ERR_REQUEST;
    if (int rc = neighbor_entry(comm); rc != MPI_SUCCESS) return rc;
    NeighborCounts const nc(comm, sendcount, recvcount, /*uniform_send=*/false);
    auto s = std::make_shared<alg::Schedule>(comm, comm->coll_seq++);
    build_neighbor_exchange(*s, sendbuf, nc.scounts.data(), nc.sdispls.data(), sendtype, recvbuf,
                            nc.rcounts.data(), nc.rdispls.data(), recvtype);
    return alg::launch_nonblocking(comm, std::move(s), MPI_SUCCESS, request);
}

int MPI_Ineighbor_allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                            void* recvbuf, int recvcount, MPI_Datatype recvtype, MPI_Comm comm,
                            MPI_Request* request) {
    if (request == nullptr) return MPI_ERR_REQUEST;
    if (int rc = neighbor_entry(comm); rc != MPI_SUCCESS) return rc;
    NeighborCounts const nc(comm, sendcount, recvcount, /*uniform_send=*/true);
    auto s = std::make_shared<alg::Schedule>(comm, comm->coll_seq++);
    build_neighbor_exchange(*s, sendbuf, nc.scounts.data(), nc.sdispls.data(), sendtype, recvbuf,
                            nc.rcounts.data(), nc.rdispls.data(), recvtype);
    return alg::launch_nonblocking(comm, std::move(s), MPI_SUCCESS, request);
}
