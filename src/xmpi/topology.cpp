/// @file topology.cpp
/// @brief Distributed-graph topologies and neighborhood collectives. A graph
/// communicator is a dup of the parent carrying each rank's local adjacency
/// (sources it receives from, destinations it sends to).
#include <vector>

#include "internal.hpp"

using namespace xmpi::detail;

int MPI_Dist_graph_create_adjacent(MPI_Comm comm, int indegree, const int* sources,
                                   const int* /*sourceweights*/, int outdegree,
                                   const int* destinations, const int* /*destweights*/,
                                   int /*info*/, int /*reorder*/, MPI_Comm* newcomm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (newcomm == nullptr || indegree < 0 || outdegree < 0) return MPI_ERR_ARG;
    MPI_Comm c = MPI_COMM_NULL;
    if (int rc = MPI_Comm_dup(comm, &c); rc != MPI_SUCCESS) return rc;
    c->topo = std::make_unique<TopoInfo>();
    c->topo->sources.assign(sources, sources + indegree);
    c->topo->destinations.assign(destinations, destinations + outdegree);
    // Creating a topology is a collective in real MPI; model its
    // synchronization cost (the dup above already did an allreduce).
    if (int rc = MPI_Barrier(c); rc != MPI_SUCCESS) return rc;
    *newcomm = c;
    return MPI_SUCCESS;
}

int MPI_Dist_graph_neighbors_count(MPI_Comm comm, int* indegree, int* outdegree, int* weighted) {
    comm = resolve(comm);
    if (comm == nullptr || comm->topo == nullptr) return MPI_ERR_COMM;
    if (indegree != nullptr) *indegree = static_cast<int>(comm->topo->sources.size());
    if (outdegree != nullptr) *outdegree = static_cast<int>(comm->topo->destinations.size());
    if (weighted != nullptr) *weighted = 0;
    return MPI_SUCCESS;
}

int MPI_Dist_graph_neighbors(MPI_Comm comm, int maxindegree, int* sources, int* /*sourceweights*/,
                             int maxoutdegree, int* destinations, int* /*destweights*/) {
    comm = resolve(comm);
    if (comm == nullptr || comm->topo == nullptr) return MPI_ERR_COMM;
    for (int i = 0; i < maxindegree && i < static_cast<int>(comm->topo->sources.size()); ++i) {
        sources[i] = comm->topo->sources[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < maxoutdegree && i < static_cast<int>(comm->topo->destinations.size());
         ++i) {
        destinations[i] = comm->topo->destinations[static_cast<std::size_t>(i)];
    }
    return MPI_SUCCESS;
}

namespace {

int neighbor_exchange(const void* sendbuf, const int* sendcounts, const int* sdispls,
                      MPI_Datatype sendtype, void* recvbuf, const int* recvcounts,
                      const int* rdispls, MPI_Datatype recvtype, MPI_Comm comm) {
    if (comm->topo == nullptr) return MPI_ERR_COMM;
    if (any_member_dead(comm)) return MPIX_ERR_PROC_FAILED;
    std::uint64_t const seq = comm->coll_seq++;
    auto const& topo = *comm->topo;

    std::vector<xmpi_request_t*> rreqs;
    rreqs.reserve(topo.sources.size());
    for (std::size_t j = 0; j < topo.sources.size(); ++j) {
        xmpi_request_t* req = nullptr;
        auto* dst = static_cast<std::byte*>(recvbuf) +
                    static_cast<long long>(rdispls[j]) * recvtype->extent;
        if (int rc = post_recv(tls_rank(), comm, comm->context + 1,
                               topo.sources[j], coll_tag(seq, 0), dst,
                               recvcounts[j], recvtype, true, &req);
            rc != MPI_SUCCESS)
            return rc;
        rreqs.push_back(req);
    }
    for (std::size_t i = 0; i < topo.destinations.size(); ++i) {
        auto const* src = static_cast<std::byte const*>(sendbuf) +
                          static_cast<long long>(sdispls[i]) * sendtype->extent;
        if (int rc = deposit(tls_rank(), comm, comm->context + 1, topo.destinations[i],
                             coll_tag(seq, 0), src, sendcounts[i], sendtype, nullptr, true);
            rc != MPI_SUCCESS) {
            for (auto* rq : rreqs) wait_one(rq, MPI_STATUS_IGNORE);
            return rc;
        }
    }
    int first_error = MPI_SUCCESS;
    for (auto* rq : rreqs) {
        int const rc = wait_one(rq, MPI_STATUS_IGNORE);
        if (rc != MPI_SUCCESS && first_error == MPI_SUCCESS) first_error = rc;
    }
    return first_error;
}

}  // namespace

int MPI_Neighbor_alltoallv(const void* sendbuf, const int* sendcounts, const int* sdispls,
                           MPI_Datatype sendtype, void* recvbuf, const int* recvcounts,
                           const int* rdispls, MPI_Datatype recvtype, MPI_Comm comm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    return neighbor_exchange(sendbuf, sendcounts, sdispls, sendtype, recvbuf, recvcounts, rdispls,
                             recvtype, comm);
}

int MPI_Neighbor_alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                          int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
    comm = resolve(comm);
    if (int rc = check_comm(comm); rc != MPI_SUCCESS) return rc;
    if (comm->topo == nullptr) return MPI_ERR_COMM;
    auto const out_n = static_cast<int>(comm->topo->destinations.size());
    auto const in_n = static_cast<int>(comm->topo->sources.size());
    std::vector<int> scounts(static_cast<std::size_t>(out_n), sendcount);
    std::vector<int> rcounts(static_cast<std::size_t>(in_n), recvcount);
    std::vector<int> sdispls(static_cast<std::size_t>(out_n));
    std::vector<int> rdispls(static_cast<std::size_t>(in_n));
    for (int i = 0; i < out_n; ++i) sdispls[static_cast<std::size_t>(i)] = i * sendcount;
    for (int i = 0; i < in_n; ++i) rdispls[static_cast<std::size_t>(i)] = i * recvcount;
    return neighbor_exchange(sendbuf, scounts.data(), sdispls.data(), sendtype, recvbuf,
                             rcounts.data(), rdispls.data(), recvtype, comm);
}
