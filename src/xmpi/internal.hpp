/// @file internal.hpp
/// @brief Substrate-internal data structures: universe, rank state, mailbox
/// transport with MPI matching semantics, requests, communicators, datatypes
/// and reduction ops. Shared across the xmpi translation units; not installed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "topo/topo.hpp"
#include "trace/trace.hpp"
#include "xmpi/mpi.h"
#include "xmpi/xmpi.hpp"

namespace xmpi::detail {

struct RankState;
struct Universe;

namespace shm {
struct State;
}  // namespace shm

namespace progress {
class Engine;
}  // namespace progress

// ---------------------------------------------------------------------------
// Datatypes
// ---------------------------------------------------------------------------

/// Internal representation of an MPI datatype. Builtins are immutable
/// singletons; derived types form a DAG (children refcounted by ownership of
/// the creating code: MPI requires the user keep constituent types alive
/// until commit, we additionally snapshot what we need so frees are safe).
struct DatatypeImpl {
    enum class Kind { builtin, contiguous, vector, indexed, strct };

    Kind kind = Kind::builtin;
    /// Packed (true data) size of one element of this type, in bytes.
    int size = 0;
    /// Extent and lower bound in the caller's memory layout.
    MPI_Aint extent = 0;
    MPI_Aint lb = 0;
    bool committed = false;
    bool is_builtin = false;
    /// Identifies builtin types for reduction dispatch (index into table).
    int builtin_id = -1;

    // contiguous/vector/indexed
    int count = 0;
    int blocklength = 0;
    int stride = 0;  // in elements of child
    std::vector<int> blocklengths;
    std::vector<MPI_Aint> displacements;  // indexed: element displs; struct: byte displs
    MPI_Datatype child = nullptr;
    std::vector<MPI_Datatype> children;  // struct

    /// Packs `count` elements starting at `src` into contiguous bytes at `dst`.
    void pack(void const* src, int n, std::byte* dst) const;
    /// Unpacks `n` elements from contiguous bytes at `src` into `dst`.
    void unpack(std::byte const* src, int n, void* dst) const;
};

// ---------------------------------------------------------------------------
// Reduction ops
// ---------------------------------------------------------------------------

struct OpImpl {
    /// Applies `inout[i] = in[i] op inout[i]` reversed per MPI: the standard
    /// computes inout = in op inout with `in` being the lower-rank operand?
    /// We use the convention apply(in, inout, len): inout[i] = op(in[i],
    /// inout[i]) where `in` holds the *left* (lower-rank) operand.
    std::function<void(void*, void*, int*, MPI_Datatype*)> fn;
    bool commutative = true;
    bool builtin = false;
    int builtin_id = -1;  // index into builtin op table for fast dispatch
};

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// Completion backlink for synchronous-mode sends: the sender blocks (or its
/// request stays incomplete) until a receiver matched the envelope.
struct SsendToken {
    std::atomic<bool> matched{false};
    double match_vtime = 0.0;  // written before `matched` is released
    RankState* sender = nullptr;
};

/// A message in flight (already "on the wire": xmpi is fully eager).
struct Envelope {
    int context = 0;
    int src = 0;  // comm rank of the sender within `context`'s communicator
    int tag = 0;
    std::vector<std::byte> bytes;
    double arrival = 0.0;  // virtual time at which the payload is available
    /// Latency of the link this message traveled (intra- or inter-node);
    /// prices the synchronous-mode acknowledgement hop.
    double ack_alpha = 0.0;
    std::shared_ptr<SsendToken> ssend;  // non-null for synchronous-mode sends
};

/// Request object backing MPI_Request. Lifetime: created by the initiating
/// call, destroyed by MPI_Wait*/MPI_Test* completion or MPI_Request_free.
struct xmpi_request_t_internal;

// ---------------------------------------------------------------------------
// Mailbox: per-rank matching engine. All state is guarded by `m`; waiters
// block on `cv`. Completing a request owned by rank R requires holding R's
// mailbox mutex (requests are completed either by R itself or by a sender
// currently holding R's mutex).
// ---------------------------------------------------------------------------
struct Mailbox {
    std::mutex m;
    std::condition_variable cv;
    std::deque<Envelope> unexpected;
    std::vector<xmpi_request_t*> posted;  // posted receives, in post order
};

// ---------------------------------------------------------------------------
// Rank state
// ---------------------------------------------------------------------------

/// A rank's virtual clock. Plain double semantics at the call sites, but
/// independently atomic underneath: with the asynchronous progress engine a
/// schedule owned by rank R may be advanced by a progress thread while R's
/// own application thread keeps charging compute, so reads and updates must
/// not tear. Updates use CAS loops (no lost increments within one
/// operation); cross-thread *ordering* of clock advances during genuine
/// overlap is inherently approximate — completion values are made coherent
/// by the request's release/acquire completion flag.
struct VTime {
    std::atomic<double> v{0.0};

    operator double() const { return v.load(std::memory_order_relaxed); }
    VTime& operator=(double x) {
        v.store(x, std::memory_order_relaxed);
        return *this;
    }
    VTime& operator+=(double dt) {
        double cur = v.load(std::memory_order_relaxed);
        while (!v.compare_exchange_weak(cur, cur + dt, std::memory_order_relaxed)) {
        }
        return *this;
    }
    /// Monotone advance to at least `t` (message arrival semantics).
    void advance_to(double t) {
        double cur = v.load(std::memory_order_relaxed);
        while (t > cur && !v.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
        }
    }
};

struct RankState {
    Universe* universe = nullptr;
    int world_rank = 0;
    Mailbox mbox;

    // Virtual clock.
    VTime vnow;
    double last_cpu = 0.0;  // last sampled thread CPU time

    std::atomic<bool> dead{false};

    Counters counters;

    /// Wall-clock nanoseconds spent asleep in blocking wait/test paths
    /// (p2p.cpp samples the steady clock only when a wait actually blocks).
    /// Deliberately *not* a Counters field: Counters is a stable
    /// user-visible aggregate struct; this is exposed via the
    /// `p2p.wait_time_ns` pvar instead.
    std::uint64_t wait_time_ns = 0;

    /// Number of generalized-request progress invocations made from this
    /// rank's application thread (wait/test/free paths). The overlap test
    /// and `bench_overhead --progress-smoke` assert this stays zero while
    /// the asynchronous progress engine owns the armed schedules. Exposed
    /// via the `progress.app_progress_calls` pvar.
    std::uint64_t app_progress_calls = 0;

    /// Event-trace ring; non-null only while this universe is traced
    /// (XMPI_TRACE set). Written exclusively by the owning rank thread.
    std::unique_ptr<trace::Ring> trace_ring;

    // Per-rank world/self communicator objects (sentinels resolve here).
    MPI_Comm world = nullptr;
    MPI_Comm self = nullptr;

    std::exception_ptr error;
};

// ---------------------------------------------------------------------------
// Universe
// ---------------------------------------------------------------------------
struct Universe {
    Config cfg;
    int size = 0;
    std::uint64_t id = 0;
    /// world rank -> node id of the hierarchical topology; empty on a flat
    /// (single-tier) network. Resolved once at universe creation
    /// (see topo/topo.hpp) and immutable afterwards.
    std::vector<int> node_of_world;
    std::vector<std::unique_ptr<RankState>> ranks;
    /// Next free context id; communicator creation agrees on a common value
    /// via an internal allreduce-max.
    std::atomic<int> next_context{16};
    std::atomic<int> dead_count{0};
    /// Shared-memory transport state: per-node rendezvous-cell registries
    /// (see shm/shm.hpp). Built once at universe creation alongside the node
    /// map; shared_ptr for the type-erased deleter, the full type is only
    /// visible to the transport and the schedule executor.
    std::shared_ptr<shm::State> shm;
    /// Asynchronous progress engine; non-null only when XMPI_ASYNC_PROGRESS
    /// (or the XMPI_T_progress_set control) enabled it at universe start.
    /// shared_ptr for the type-erased deleter — progress::Engine is complete
    /// only inside progress.cpp and its clients.
    std::shared_ptr<progress::Engine> progress_engine;
    /// Trace rings owned by the progress-engine threads (one per engine
    /// thread, allocated via trace::add_engine_ring before rank threads
    /// exist, merged into the timeline at trace::end_universe).
    std::vector<std::unique_ptr<trace::Ring>> engine_trace_rings;
};

/// Thread-local pointer to the calling rank's state (null outside ranks).
RankState*& tls_rank();

/// Samples the calling thread's CPU clock in seconds.
double thread_cpu_now();

/// Advances the calling rank's virtual clock by the CPU time consumed since
/// the last charge.
void charge_compute(RankState* rs);

/// Wakes every rank blocked on its mailbox (used on rank death / revoke so
/// blocked operations re-evaluate their failure predicates).
void wake_all(Universe* u);

/// Wakes one rank blocked on its mailbox condition variable (lock-empty
/// critical section, so a concurrently parking waiter cannot miss the
/// notify). Used by the progress engine to publish schedule completion.
void wake_rank(RankState* rs);

// ---------------------------------------------------------------------------
// Communicators
// ---------------------------------------------------------------------------

struct TopoInfo {
    std::vector<int> sources;
    std::vector<int> destinations;
};

}  // namespace xmpi::detail

namespace xmpi::detail::alg {
/// Per-communicator compiled-schedule cache (algorithms/registry.cpp).
struct SchedCache;
}  // namespace xmpi::detail::alg

/// Communicator object. xmpi gives every member rank its *own* copy of the
/// communicator (same context id, identical group vector), which removes any
/// need for cross-thread synchronization on communicator state: matching
/// only ever consults the integer context id carried by messages.
struct xmpi_comm_t {
    xmpi::detail::Universe* universe = nullptr;
    /// Point-to-point context id. Collective traffic uses `context + 1`.
    int context = 0;
    /// comm rank -> world rank.
    std::vector<int> group;
    /// world rank -> comm rank (-1 if not a member).
    std::vector<int> world_to_comm;
    /// This copy's owner rank (comm rank).
    int my_rank = 0;
    /// Per-copy collective sequence number; aligned across members because
    /// collectives on a communicator are ordered.
    std::uint64_t coll_seq = 0;
    /// Revoke fast-path cache: re-checked against the global registry when
    /// the revoke epoch moves (revokes are rare; the hot path is one load).
    /// Atomic because the progress engine re-evaluates revocation on behalf
    /// of the owner while the owner may do the same on its own operations.
    std::atomic<std::uint64_t> seen_revoke_epoch{0};
    std::atomic<bool> revoked_cached{false};
    /// Acknowledged failures (ULFM): operations ignore acked dead ranks for
    /// MPI_ANY_SOURCE receives.
    std::vector<int> acked_failures;
    std::unique_ptr<xmpi::detail::TopoInfo> topo;
    /// Lazily built node structure of this communicator under the
    /// universe's topology (see topo::node_info); owned per-copy.
    std::unique_ptr<xmpi::detail::topo::NodeInfo> node_cache;
    /// Compiled-schedule reuse cache (see alg::acquire_schedule); per-copy
    /// like everything else on the communicator, so no locking. shared_ptr
    /// for the type-erased deleter — SchedCache is complete only inside the
    /// algorithms layer.
    std::shared_ptr<xmpi::detail::alg::SchedCache> sched_cache;

    int size() const { return static_cast<int>(group.size()); }
    int rank() const { return my_rank; }
    int world_of(int comm_rank) const { return group[static_cast<std::size_t>(comm_rank)]; }
};

struct xmpi_datatype_t : xmpi::detail::DatatypeImpl {};
struct xmpi_op_t : xmpi::detail::OpImpl {};

/// Request backing store; see detail::Mailbox for the locking discipline.
struct xmpi_request_t {
    enum class Kind { send, ssend, recv, generalized, null };
    Kind kind = Kind::null;

    std::atomic<bool> complete{false};
    double completion_vtime = 0.0;
    MPI_Status status{MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_SUCCESS, 0};
    int error = MPI_SUCCESS;

    // --- persistent requests (MPI_Send_init/MPI_Recv_init and the
    // MPI_*_init collectives). A persistent request cycles between
    // *inactive* (allocated, not running an operation) and *active*
    // (started). MPI_Start flips inactive -> active through `start_fn`;
    // wait/test completion flips active -> inactive *without* deallocating,
    // so the request can be started again. Only MPI_Request_free releases
    // it. Non-persistent requests are born active and are consumed by
    // completion, exactly as before.
    bool persistent = false;
    bool active = true;
    std::function<int(xmpi_request_t*)> start_fn;

    xmpi::detail::RankState* owner = nullptr;

    // --- receive matching spec (posted receives) ---
    int context = 0;
    int match_src = MPI_ANY_SOURCE;  // comm rank or wildcard
    int match_tag = MPI_ANY_TAG;
    void* buf = nullptr;
    int count = 0;
    MPI_Datatype type = nullptr;
    MPI_Comm comm = nullptr;  // communicator the op runs on (for failure checks)
    bool posted = false;      // still linked in owner's mailbox `posted` list

    // --- synchronous send ---
    std::shared_ptr<xmpi::detail::SsendToken> tok;

    // --- generalized requests (MPI_Ibarrier and the MPI_I* collectives,
    // whose algorithm schedules — see algorithms/schedule.hpp — are advanced
    // from here): progress state machine. Invoked with the owner's mailbox
    // *unlocked*; returns completion.
    std::function<bool(xmpi_request_t*)> progress;

    /// True while the asynchronous progress engine owns this generalized
    /// request's schedule: wait/test/free must NOT invoke `progress` and
    /// instead park on the completion flag (the engine wakes the owner).
    /// Written by the initiating/starting application thread before the
    /// handle can be observed by wait/test on that same thread; cleared on
    /// each persistent restart that stays synchronous.
    bool offloaded = false;
};

namespace xmpi::detail {

// ---------------------------------------------------------------------------
// Internal point-to-point engine (used by both the public p2p API and the
// collective algorithms, which pass `context + 1` and synthesized tags).
// ---------------------------------------------------------------------------

/// Packs and deposits a message at `dest_world`'s mailbox; performs
/// sender-side matching against posted receives. Returns an MPI error code.
/// `sync != nullptr` requests synchronous-mode semantics via the token.
int deposit(RankState* sender, MPI_Comm comm, int context, int dest_comm_rank, int tag,
            void const* buf, int count, MPI_Datatype type,
            std::shared_ptr<SsendToken> const& sync, bool collective);

/// Creates and posts (or immediately satisfies from the unexpected queue) a
/// receive request. The returned request is heap-allocated.
int post_recv(RankState* self, MPI_Comm comm, int context, int src, int tag, void* buf, int count,
              MPI_Datatype type, bool collective, xmpi_request_t** out);

/// Blocks until `req` completes (runs `progress` state machines as needed).
/// Consumes the request on success. Returns its error code.
int wait_one(xmpi_request_t* req, MPI_Status* status);

/// Non-blocking completion check; consumes the request when complete.
int test_one(xmpi_request_t* req, int* flag, MPI_Status* status);

/// Blocking receive convenience wrapper.
int recv_blocking(RankState* self, MPI_Comm comm, int context, int src, int tag, void* buf,
                  int count, MPI_Datatype type, bool collective, MPI_Status* status);

/// True if world rank `w` has failed.
bool rank_dead(Universe* u, int w);

/// Resolves the public sentinel handles to the calling rank's comm objects.
MPI_Comm resolve(MPI_Comm comm);

/// Checks common preconditions (inside rank, live comm, not revoked).
/// Returns MPI_SUCCESS or an error code.
int check_comm(MPI_Comm comm);

/// @name Revoked-context registry (ULFM); implemented in runtime.cpp
/// @{
void revoke_context(Universe* u, int context);
bool context_revoked_slow(int context);
std::uint64_t revoke_epoch();
void clear_revoked_registry();
/// True if `comm` (this rank's copy) refers to a revoked context.
bool comm_revoked(MPI_Comm comm);
/// @}

/// True if any unacked member of `comm` has failed; used for fail-fast
/// collective entry and MPI_ANY_SOURCE failure detection.
bool any_member_dead(MPI_Comm comm);

/// Returns an available fresh context id agreed by all members of `comm`
/// (internal allreduce-max over the collective context).
int agree_context(MPI_Comm comm);

/// Internal building blocks reused across collectives and comm management.
/// These run on the *collective* context of `comm` using its coll_seq.
int coll_allgather_bytes(MPI_Comm comm, void const* send, int bytes_each, void* recv);
int coll_allreduce_max_int(MPI_Comm comm, int value, int* out);
int coll_barrier(MPI_Comm comm);

/// Encodes collective step tags: (seq, step) -> tag.
inline int coll_tag(std::uint64_t seq, int step) {
    return static_cast<int>(((seq & 0x3FFFFu) << 10) | static_cast<unsigned>(step & 0x3FF));
}

/// Builds a fresh communicator copy for the calling rank.
MPI_Comm make_comm(Universe* u, int context, std::vector<int> group, int my_world_rank);

/// Reduction application: inout[i] = op(in[i], inout[i]) with `in` the
/// left/lower-rank operand. `len` elements of `type`.
void apply_op(MPI_Op op, void const* in, void* inout, int len, MPI_Datatype type);

}  // namespace xmpi::detail
