/// @file runtime.cpp
/// @brief Universe lifecycle: rank threads, virtual clocks, sentinels,
/// environment calls and in-rank introspection.
#include <limits.h>
#include <pthread.h>
#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "internal.hpp"
#include "progress.hpp"
#include "shm/shm.hpp"

namespace xmpi::detail {

namespace {

/// Exception used to unwind a rank that called XMPI_Die; never escapes run().
struct RankKilled {};

std::atomic<std::uint64_t> g_universe_counter{1};

/// Revoked-context registry (see ULFM): epoch bump invalidates the per-comm
/// fast-path cache.
struct RevokeRegistry {
    std::mutex m;
    std::unordered_set<int> contexts;
    std::atomic<std::uint64_t> epoch{0};
};
RevokeRegistry g_revoked;

}  // namespace

RankState*& tls_rank() {
    thread_local RankState* rs = nullptr;
    return rs;
}

double thread_cpu_now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void charge_compute(RankState* rs) {
    // A progress thread adopts the owner's identity (tls_rank) while it
    // advances an offloaded schedule, but its CPU clock is its *own*
    // per-thread clock: sampling it here would corrupt the owner's last_cpu
    // anchor and charge engine bookkeeping as application compute. The
    // owner's thread keeps charging its real compute at its next MPI call.
    if (progress::on_progress_thread()) return;
    double const cpu = thread_cpu_now();
    rs->vnow += (cpu - rs->last_cpu) * rs->universe->cfg.compute_scale;
    rs->last_cpu = cpu;
}

void wake_all(Universe* u) {
    for (auto& r : u->ranks) {
        std::lock_guard<std::mutex> lock(r->mbox.m);
        r->mbox.cv.notify_all();
    }
    // Dead-rank / revoke predicates are also re-evaluated by parked progress
    // threads (their nonblocking protocol waits return before the failure
    // polls, so they rely on this nudge plus their park timeout).
    progress::stimulate(u, -1);
}

bool rank_dead(Universe* u, int w) {
    return u->ranks[static_cast<std::size_t>(w)]->dead.load(std::memory_order_acquire);
}

MPI_Comm resolve(MPI_Comm comm) {
    RankState* rs = tls_rank();
    if (comm == MPI_COMM_WORLD) return rs ? rs->world : nullptr;
    if (comm == MPI_COMM_SELF) return rs ? rs->self : nullptr;
    return comm;
}

int check_comm(MPI_Comm comm) {
    if (tls_rank() == nullptr) return MPI_ERR_OTHER;
    if (comm == nullptr) return MPI_ERR_COMM;
    if (comm_revoked(comm)) return MPIX_ERR_REVOKED;
    return MPI_SUCCESS;
}

MPI_Comm make_comm(Universe* u, int context, std::vector<int> group, int my_world_rank) {
    auto* c = new xmpi_comm_t();
    c->universe = u;
    c->context = context;
    c->world_to_comm.assign(static_cast<std::size_t>(u->size), -1);
    for (std::size_t i = 0; i < group.size(); ++i) {
        c->world_to_comm[static_cast<std::size_t>(group[i])] = static_cast<int>(i);
    }
    c->group = std::move(group);
    c->my_rank = c->world_to_comm[static_cast<std::size_t>(my_world_rank)];
    return c;
}

// --- revoke registry access used by ulfm.cpp and check_comm ----------------

void revoke_context(Universe*, int context) {
    {
        std::lock_guard<std::mutex> lock(g_revoked.m);
        g_revoked.contexts.insert(context);
    }
    g_revoked.epoch.fetch_add(1, std::memory_order_release);
}

bool context_revoked_slow(int context) {
    std::lock_guard<std::mutex> lock(g_revoked.m);
    return g_revoked.contexts.contains(context);
}

std::uint64_t revoke_epoch() { return g_revoked.epoch.load(std::memory_order_acquire); }

void clear_revoked_registry() {
    std::lock_guard<std::mutex> lock(g_revoked.m);
    g_revoked.contexts.clear();
}

}  // namespace xmpi::detail

namespace xmpi {

using detail::RankState;
using detail::Universe;

namespace {

struct ThreadArg {
    Universe* universe;
    int rank;
    std::function<void(int)> const* body;
};

void* rank_main(void* vp) {
    auto* arg = static_cast<ThreadArg*>(vp);
    RankState* rs = arg->universe->ranks[static_cast<std::size_t>(arg->rank)].get();
    detail::tls_rank() = rs;
    rs->last_cpu = detail::thread_cpu_now();
    try {
        (*arg->body)(arg->rank);
    } catch (detail::RankKilled const&) {
        // injected failure: rank is already marked dead
    } catch (...) {
        rs->error = std::current_exception();
    }
    detail::charge_compute(rs);
    detail::tls_rank() = nullptr;
    return nullptr;
}

}  // namespace

RunResult run(int num_ranks, std::function<void(int)> const& body, Config const& config) {
    if (num_ranks < 1) throw std::invalid_argument{"xmpi::run: num_ranks must be >= 1"};
    auto universe = std::make_unique<Universe>();
    universe->cfg = config;
    universe->size = num_ranks;
    universe->id = detail::g_universe_counter.fetch_add(1);
    universe->node_of_world = detail::topo::build_node_map(num_ranks, config);
    {
        int num_nodes = 1;
        for (int const n : universe->node_of_world)
            if (n + 1 > num_nodes) num_nodes = n + 1;
        universe->shm = detail::shm::make_state(num_nodes);
    }
    universe->ranks.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
        auto rs = std::make_unique<RankState>();
        rs->universe = universe.get();
        rs->world_rank = r;
        universe->ranks.push_back(std::move(rs));
    }
    // World and self communicators, one copy per rank (see internal.hpp).
    std::vector<int> world_group(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) world_group[static_cast<std::size_t>(r)] = r;
    for (int r = 0; r < num_ranks; ++r) {
        RankState* rs = universe->ranks[static_cast<std::size_t>(r)].get();
        rs->world = detail::make_comm(universe.get(), /*context=*/0, world_group, r);
        rs->self = detail::make_comm(universe.get(), /*context=*/4, {r}, r);
    }
    universe->next_context.store(16);

    // Allocate trace rings (and raise the hot-path flag) before any rank can
    // emit; a no-op when XMPI_TRACE is unset.
    detail::trace::begin_universe(*universe);

    // Spawn the asynchronous progress engine (after trace rings exist — the
    // engine threads register their own rings — and before any rank thread
    // can arm a schedule); a no-op unless XMPI_ASYNC_PROGRESS / the
    // XMPI_T_progress_set control enabled it.
    detail::progress::start(universe.get());

    std::vector<ThreadArg> args(static_cast<std::size_t>(num_ranks));
    std::vector<pthread_t> threads(static_cast<std::size_t>(num_ranks));
    pthread_attr_t attr;
    pthread_attr_init(&attr);
    std::size_t const min_stack = static_cast<std::size_t>(PTHREAD_STACK_MIN) * 2;
    pthread_attr_setstacksize(&attr, config.stack_size < min_stack ? min_stack : config.stack_size);

    auto const wall_start = std::chrono::steady_clock::now();
    for (int r = 0; r < num_ranks; ++r) {
        args[static_cast<std::size_t>(r)] = ThreadArg{universe.get(), r, &body};
        int const rc = pthread_create(&threads[static_cast<std::size_t>(r)], &attr, rank_main,
                                      &args[static_cast<std::size_t>(r)]);
        if (rc != 0) {
            // Join what we started before reporting.
            for (int j = 0; j < r; ++j) pthread_join(threads[static_cast<std::size_t>(j)], nullptr);
            pthread_attr_destroy(&attr);
            detail::progress::stop(universe.get());
            throw std::runtime_error{"xmpi::run: pthread_create failed"};
        }
    }
    for (int r = 0; r < num_ranks; ++r) pthread_join(threads[static_cast<std::size_t>(r)], nullptr);
    pthread_attr_destroy(&attr);
    auto const wall_end = std::chrono::steady_clock::now();

    // Stop and join the progress engine before trace export and counter
    // aggregation: after this point no thread mutates rank state.
    detail::progress::stop(universe.get());

    // All rank threads have joined: merge the per-rank rings and export the
    // Chrome trace-event JSON (MPI_Finalize is a no-op in a threads-as-ranks
    // substrate, so end-of-universe is the real finalize point).
    detail::trace::end_universe(*universe);

    RunResult result;
    result.wall_time = std::chrono::duration<double>(wall_end - wall_start).count();
    result.rank_vtimes.reserve(static_cast<std::size_t>(num_ranks));
    std::exception_ptr first_error;
    for (auto& rs : universe->ranks) {
        result.max_vtime = rs->vnow > result.max_vtime ? rs->vnow : result.max_vtime;
        result.rank_vtimes.push_back(rs->vnow);
        result.total += rs->counters;
        if (rs->error && !first_error) first_error = rs->error;
        delete rs->world;
        delete rs->self;
    }
    detail::clear_revoked_registry();
    if (first_error) std::rethrow_exception(first_error);
    return result;
}

RunResult run(int num_ranks, std::function<void()> const& body, Config const& config) {
    return run(
        num_ranks, [&body](int) { body(); }, config);
}

double vtime_now() {
    RankState* rs = detail::tls_rank();
    if (rs == nullptr) return 0.0;
    detail::charge_compute(rs);
    return rs->vnow;
}

void vtime_add(double seconds) {
    RankState* rs = detail::tls_rank();
    if (rs != nullptr) rs->vnow += seconds;
}

Counters counters_now() {
    RankState* rs = detail::tls_rank();
    return rs != nullptr ? rs->counters : Counters{};
}

std::uint64_t universe_id() {
    RankState* rs = detail::tls_rank();
    return rs != nullptr ? rs->universe->id : 0;
}

bool in_rank() { return detail::tls_rank() != nullptr; }

}  // namespace xmpi

// ---------------------------------------------------------------------------
// Environment API
// ---------------------------------------------------------------------------

int MPI_Init(int*, char***) { return MPI_SUCCESS; }

int MPI_Finalize() { return MPI_SUCCESS; }

int MPI_Initialized(int* flag) {
    if (flag != nullptr) *flag = xmpi::detail::tls_rank() != nullptr ? 1 : 0;
    return MPI_SUCCESS;
}

int MPI_Abort(MPI_Comm, int errorcode) {
    std::fprintf(stderr, "MPI_Abort called with code %d\n", errorcode);
    throw std::runtime_error{"MPI_Abort"};
}

double MPI_Wtime() { return xmpi::vtime_now(); }

[[noreturn]] void XMPI_Die() {
    using namespace xmpi::detail;
    RankState* rs = tls_rank();
    if (rs == nullptr) throw std::logic_error{"XMPI_Die called outside a rank"};
    rs->dead.store(true, std::memory_order_release);
    rs->universe->dead_count.fetch_add(1);
    wake_all(rs->universe);
    throw RankKilled{};
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
    comm = xmpi::detail::resolve(comm);
    if (comm == nullptr || size == nullptr) return MPI_ERR_COMM;
    *size = comm->size();
    return MPI_SUCCESS;
}

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
    comm = xmpi::detail::resolve(comm);
    if (comm == nullptr || rank == nullptr) return MPI_ERR_COMM;
    *rank = comm->rank();
    return MPI_SUCCESS;
}
