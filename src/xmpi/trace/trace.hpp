/// @file trace.hpp
/// @brief Event tracing: per-rank lock-free ring buffers of fixed-size binary
/// records, a Chrome-trace-event JSON exporter, an MPI_T-style pvar registry
/// and per-invocation critical-path attribution. The whole subsystem costs a
/// single relaxed atomic load + branch per hook site when `XMPI_TRACE` is
/// unset.
///
/// Knobs (all read lazily at the first universe launch, re-read after
/// `XMPI_T_alg_env_refresh`):
///   XMPI_TRACE=<path>         enable tracing; merged Chrome trace-event JSON
///                             is written to <path> when the universe ends.
///                             An empty value leaves tracing off.
///   XMPI_TRACE_RING_EVENTS=N  per-rank ring capacity in events (rounded up
///                             to a power of two, default 65536). A garbage
///                             value warns once and disables tracing for the
///                             run; it never aborts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "xmpi/xmpi.hpp"

namespace xmpi::detail {

struct Universe;

namespace trace {

// ---------------------------------------------------------------------------
// Event kinds. Values are stable: they appear verbatim in exported traces.
// ---------------------------------------------------------------------------
enum class Ev : std::uint8_t {
    coll_enter = 0,  ///< blocking collective entered (family/alg/bytes/seq)
    coll_exit,       ///< blocking collective returned
    send,            ///< p2p deposit priced on the wire (peer = dest world)
    post,            ///< receive posted (peer = source comm rank or ANY)
    recv_done,       ///< receive completed (peer = source world, seq = context)
    wait_begin,      ///< entering a blocking wait that actually sleeps
    wait_end,        ///< leaving that wait (bytes = wall ns spent asleep)
    sched_build,     ///< schedule compiled for a collective invocation
    sched_cache_hit, ///< schedule reused from the per-communicator cache
    sched_arm,       ///< persistent schedule re-armed by MPI_Start
    step_send,       ///< executor issued a send step (peer = dest world)
    step_post,       ///< executor issued a post_recv step (peer = src world)
    step_wait,       ///< executor blocked on a recv slot (peer = slot index)
    step_local,      ///< executor ran a local compute/copy step
    sched_done,      ///< schedule ran to completion
    tune_probe,      ///< feedback loop forced a non-preferred algorithm
    tune_demote,     ///< feedback loop demoted the model's choice
    tune_recover,    ///< feedback loop recovered a demoted algorithm
    step_copy_pub,   ///< executor published a buffer for direct peer reads
                     ///< (tag = rendezvous cell id, bytes = published size)
    step_copy_get,   ///< executor copied directly out of a peer buffer
                     ///< (peer = producer world, tag = cell id)
    prog_offload,    ///< armed schedule handed to the progress engine
                     ///< (emitted by the initiating app thread; bytes =
                     ///< schedule comm_bytes)
    prog_step,       ///< progress thread advanced an offloaded schedule
                     ///< (peer = steps advanced this pass, rank = owner)
    prog_complete,   ///< progress thread completed an offloaded schedule
                     ///< (bytes = error code, rank = owner)
};

inline constexpr int kEvKinds = 23;

/// Human-readable name for an event kind (used by the JSON exporter and
/// tests). Returns "?" for out-of-range values.
char const* ev_name(Ev kind);

// ---------------------------------------------------------------------------
// Binary record: 40 bytes, fixed layout, written by exactly one rank thread.
// ---------------------------------------------------------------------------
struct Record {
    double vtime = 0.0;        ///< recording rank's virtual clock (seconds)
    std::uint64_t seq = 0;     ///< collective seq or p2p context id
    std::uint64_t bytes = 0;   ///< payload bytes (or wall ns for wait_end)
    std::int32_t rank = -1;    ///< world rank of the recording rank
    std::int32_t peer = -1;    ///< peer world rank / wait slot; -1 if n/a
    std::int32_t tag = -1;     ///< full message tag; -1 if n/a
    std::uint8_t kind = 0;     ///< Ev
    std::uint8_t family = 0xff;///< alg::Family, 0xff if n/a
    std::uint8_t alg = 0xff;   ///< algorithm index within family, 0xff if n/a
    std::uint8_t pad = 0;
};

static_assert(sizeof(Record) == 40, "trace records are fixed-size binary");

// ---------------------------------------------------------------------------
// Per-rank ring. Single writer (the owning rank thread); snapshots are taken
// only after the rank thread has joined, so no reader synchronization is
// needed. Overflow overwrites the oldest record and is counted, never blocks.
// ---------------------------------------------------------------------------
class Ring {
public:
    explicit Ring(std::size_t capacity);

    void push(Record const& r) {
        buf_[static_cast<std::size_t>(count_ & mask_)] = r;
        ++count_;
    }

    std::size_t capacity() const { return buf_.size(); }
    /// Total events ever pushed (including overwritten ones).
    std::uint64_t recorded() const { return count_; }
    /// Events lost to overflow.
    std::uint64_t dropped() const {
        return count_ > buf_.size() ? count_ - buf_.size() : 0;
    }
    /// Retained records, oldest first.
    std::vector<Record> snapshot() const;

private:
    std::vector<Record> buf_;
    std::uint64_t mask_ = 0;
    std::uint64_t count_ = 0;
};

// ---------------------------------------------------------------------------
// Hot-path hook. `g_on` is set only while a traced universe is running, so
// with XMPI_TRACE unset every instrumented site reduces to one relaxed load
// and an untaken branch.
// ---------------------------------------------------------------------------
extern std::atomic<bool> g_on;

inline bool on() { return g_on.load(std::memory_order_relaxed); }

/// Out-of-line slow path: resolves tls_rank() and appends to its ring (or
/// to the calling thread's bound engine ring, see bind_thread_ring).
void emit(Ev kind, int peer, int tag, std::uint64_t bytes, std::uint64_t seq,
          int family = -1, int alg = -1);

/// Allocates and registers a ring for one asynchronous-progress-engine
/// thread of the running traced universe; returns nullptr when tracing is
/// off. Engine rings are merged at end_universe and exported on their own
/// "progress <idx>" lane (records still carry the *owning* rank in
/// Record::rank, so flow pairing and attribution see the same identities
/// as a synchronous run).
Ring* add_engine_ring(Universe& u, int thread_idx);

/// Marks the calling thread as an engine thread and binds its trace
/// emission to `ring` (records are tagged with lane `1 + thread_idx` in
/// Record::pad). With `ring == nullptr` the thread's events are dropped —
/// an engine thread must never write the owning rank's single-writer ring.
void bind_thread_ring(Ring* ring, int thread_idx);

/// The hook: call freely from any hot path.
inline void ev(Ev kind, int peer, int tag, std::uint64_t bytes,
               std::uint64_t seq, int family = -1, int alg = -1) {
    if (on()) emit(kind, peer, tag, bytes, seq, family, alg);
}

// ---------------------------------------------------------------------------
// Lifecycle, driven by xmpi::run().
// ---------------------------------------------------------------------------

/// Resolves the env knobs (once per refresh) and, when tracing is enabled,
/// allocates one ring per rank and raises `g_on`.
void begin_universe(Universe& u);

/// Merges the per-rank rings (all rank threads have joined), stashes the
/// merged timeline for pvar/attribution access, writes the Chrome
/// trace-event JSON if a path was configured, and lowers `g_on`.
void end_universe(Universe& u);

/// Forgets the cached env resolution; next begin_universe re-reads.
/// Called by XMPI_T_alg_env_refresh.
void refresh_env();

// ---------------------------------------------------------------------------
// Merged last-run timeline (available after end_universe; used by the pvar
// registry outside rank context, by attribution, and by tests).
// ---------------------------------------------------------------------------
struct LastRun {
    bool valid = false;
    int world_size = 0;
    std::vector<Record> records;  ///< merged, sorted by (vtime, rank)
    std::vector<int> node_of_world;
    Config cfg;
    std::uint64_t recorded = 0;  ///< sum over ranks, incl. dropped
    std::uint64_t dropped = 0;
    std::uint64_t wait_ns = 0;   ///< summed RankState::wait_time_ns
};

/// Copy of the last traced run's merged state (empty/invalid if none).
LastRun last_run();

// ---------------------------------------------------------------------------
// Latency histograms: log2-bucketed elapsed virtual time per
// (family, selected algorithm, log2 payload size). Fed by every blocking
// algorithm-backed collective regardless of XMPI_TRACE. Exposed as
// `hist.<family>.<alg>` pvars of kHistSizeBuckets * kHistLatBuckets values.
// ---------------------------------------------------------------------------
inline constexpr int kHistFamilies = 5;
inline constexpr int kHistMaxAlg = 8;
inline constexpr int kHistSizeBuckets = 25;  ///< log2(bytes), clamped to 24
inline constexpr int kHistLatBuckets = 16;   ///< log2(ns) - 6, clamped: 64ns..2ms+

/// Records one observed invocation: `elapsed` is virtual seconds.
void hist_record(int family, int alg, std::size_t bytes, double elapsed);

/// Copies the (family, alg) histogram into `out` (kHistSizeBuckets *
/// kHistLatBuckets values, size-major) / zeroes it. Bounds are the caller's
/// problem; the pvar registry only hands out in-range handles.
void hist_read(int family, int alg, unsigned long long* out);
void hist_reset(int family, int alg);

}  // namespace trace
}  // namespace xmpi::detail
