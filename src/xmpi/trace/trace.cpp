/// @file trace.cpp
/// @brief Trace subsystem implementation: ring management and env resolution,
/// the merged-timeline Chrome trace-event exporter, the log2 latency
/// histograms, the MPI_T-style pvar registry, and the per-invocation
/// critical-path attribution replay.
#include "trace.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "../algorithms/algorithms.hpp"
#include "../env.hpp"
#include "../internal.hpp"
#include "../progress.hpp"
#include "../shm/shm.hpp"

namespace xmpi::detail::trace {

std::atomic<bool> g_on{false};

namespace {

constexpr char kEnvTrace[] = "XMPI_TRACE";
constexpr char kEnvRing[] = "XMPI_TRACE_RING_EVENTS";
constexpr std::size_t kDefaultRingEvents = 65536;

/// Guards env resolution, the traced-universe count and the last-run state.
std::mutex& mutex() {
    static std::mutex m;
    return m;
}

bool g_resolved = false;
bool g_enabled = false;
std::string g_path;
std::size_t g_ring_events = kDefaultRingEvents;
int g_active_universes = 0;

LastRun& last_run_locked() {
    static LastRun lr;
    return lr;
}

std::size_t round_pow2(std::size_t v) {
    std::size_t cap = 16;
    while (cap < v) cap <<= 1;
    return cap;
}

/// Reads XMPI_TRACE / XMPI_TRACE_RING_EVENTS once per resolution cycle.
/// A set-but-garbage ring capacity warns once (via the shared warn-once
/// registry) and disables tracing for the run; it never aborts.
void resolve_locked() {
    if (g_resolved) return;
    g_resolved = true;
    g_enabled = false;
    g_path.clear();
    g_ring_events = kDefaultRingEvents;
    char const* const path = std::getenv(kEnvTrace);
    if (path == nullptr || *path == '\0') return;
    g_path = path;
    g_enabled = true;
    if (char const* const raw = std::getenv(kEnvRing); raw != nullptr && *raw != '\0') {
        long long const v = envutil::parse_env_int(
            kEnvRing, -1, 16, 1 << 22,
            "is not a ring capacity in [16, 4194304]; tracing disabled");
        if (v < 0) {
            g_enabled = false;
            g_path.clear();
            return;
        }
        g_ring_events = round_pow2(static_cast<std::size_t>(v));
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

Ring::Ring(std::size_t capacity) {
    std::size_t const cap = round_pow2(capacity);
    buf_.resize(cap);
    mask_ = cap - 1;
}

std::vector<Record> Ring::snapshot() const {
    std::uint64_t const n = std::min<std::uint64_t>(count_, buf_.size());
    std::vector<Record> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = count_ - n; i < count_; ++i) {
        out.push_back(buf_[static_cast<std::size_t>(i & mask_)]);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Hook slow path
// ---------------------------------------------------------------------------

char const* ev_name(Ev kind) {
    static constexpr std::array<char const*, kEvKinds> names = {
        "coll_enter", "coll_exit",  "send",       "post",       "recv_done",
        "wait_begin", "wait_end",   "sched_build", "sched_cache_hit", "sched_arm",
        "step.send",  "step.post",  "step.wait",  "step.local", "sched_done",
        "tune_probe", "tune_demote", "tune_recover", "step.copy_pub", "step.copy_get",
        "prog.offload", "prog.step", "prog.complete",
    };
    auto const k = static_cast<std::size_t>(kind);
    return k < names.size() ? names[k] : "?";
}

namespace {

/// Engine-thread binding: a progress thread adopts the owning rank's
/// identity (tls_rank) but must never write that rank's single-writer ring.
/// Its events go to its own ring, tagged with lane 1 + thread index in
/// Record::pad (lane 0 = the owning rank's lane).
thread_local bool t_engine_thread = false;
thread_local Ring* t_engine_ring = nullptr;
thread_local int t_engine_idx = 0;

}  // namespace

void emit(Ev kind, int peer, int tag, std::uint64_t bytes, std::uint64_t seq, int family,
          int alg) {
    RankState* const rs = tls_rank();
    if (rs == nullptr) return;
    Ring* ring = rs->trace_ring.get();
    std::uint8_t lane = 0;
    if (t_engine_thread) {
        ring = t_engine_ring;
        lane = static_cast<std::uint8_t>(1 + t_engine_idx);
    }
    if (ring == nullptr) return;
    Record r;
    r.vtime = rs->vnow;
    r.seq = seq;
    r.bytes = bytes;
    r.rank = rs->world_rank;
    r.peer = peer;
    r.tag = tag;
    r.kind = static_cast<std::uint8_t>(kind);
    r.family = family < 0 ? 0xff : static_cast<std::uint8_t>(family);
    r.alg = alg < 0 ? 0xff : static_cast<std::uint8_t>(alg);
    r.pad = lane;
    ring->push(r);
}

Ring* add_engine_ring(Universe& u, int thread_idx) {
    (void)thread_idx;
    std::lock_guard<std::mutex> lock(mutex());
    if (!g_enabled) return nullptr;
    u.engine_trace_rings.push_back(std::make_unique<Ring>(g_ring_events));
    return u.engine_trace_rings.back().get();
}

void bind_thread_ring(Ring* ring, int thread_idx) {
    t_engine_thread = true;
    t_engine_ring = ring;
    t_engine_idx = thread_idx;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void begin_universe(Universe& u) {
    std::lock_guard<std::mutex> lock(mutex());
    resolve_locked();
    if (!g_enabled) return;
    for (auto& rs : u.ranks) {
        rs->trace_ring = std::make_unique<Ring>(g_ring_events);
    }
    ++g_active_universes;
    g_on.store(true, std::memory_order_release);
}

void refresh_env() {
    std::lock_guard<std::mutex> lock(mutex());
    g_resolved = false;
}

namespace {

/// Collective-slice display name: "family/alg" when both resolve.
std::string coll_name(Record const& r) {
    if (r.family >= alg::kFamilies) return "coll";
    auto const fam = static_cast<alg::Family>(r.family);
    std::string name = alg::family_name(fam);
    auto const& table = alg::algorithms(fam);
    if (static_cast<std::size_t>(r.alg) < table.size()) {
        name += '/';
        name += table[r.alg].name;
    }
    return name;
}

/// Writes the merged timeline as Chrome trace-event JSON ("JSON object
/// format"): one lane (tid) per world rank, B/E slices for collectives and
/// waits, instants for everything else, and s/f flow pairs connecting each
/// matched send -> recv_done.
void write_chrome_json(std::string const& path, LastRun const& run) {
    std::FILE* const f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "xmpi: XMPI_TRACE=\"%s\" cannot be opened for writing\n",
                     path.c_str());
        return;
    }

    // Pass 1: pair sends with receive completions. Matching replicates the
    // transport's FIFO-per-(src, dst, context, tag) ordering; records are
    // already time-sorted, so queue order is send order.
    std::map<std::array<std::int64_t, 4>, std::deque<std::size_t>> pending;
    std::vector<std::int64_t> flow_id(run.records.size(), -1);
    std::int64_t next_flow = 1;
    for (std::size_t i = 0; i < run.records.size(); ++i) {
        Record const& r = run.records[i];
        if (r.kind == static_cast<std::uint8_t>(Ev::send)) {
            pending[{r.rank, r.peer, static_cast<std::int64_t>(r.seq), r.tag}].push_back(i);
        } else if (r.kind == static_cast<std::uint8_t>(Ev::recv_done)) {
            auto it = pending.find({r.peer, r.rank, static_cast<std::int64_t>(r.seq), r.tag});
            if (it != pending.end() && !it->second.empty()) {
                std::size_t const j = it->second.front();
                it->second.pop_front();
                std::int64_t const id = next_flow++;
                flow_id[j] = id;
                flow_id[i] = id;
            }
        }
    }

    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", f);
    bool first = true;
    auto sep = [&] {
        if (!first) std::fputc(',', f);
        first = false;
        std::fputc('\n', f);
    };

    for (int rank = 0; rank < run.world_size; ++rank) {
        int const node = rank < static_cast<int>(run.node_of_world.size())
                             ? run.node_of_world[static_cast<std::size_t>(rank)]
                             : rank;
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"rank %d (node %d)\"}}",
                     rank, rank, node);
    }
    // Progress-engine lanes follow the rank lanes (Record::pad = 1 + thread
    // index for engine-emitted records, 0 for rank-thread records).
    int max_lane = 0;
    for (Record const& r : run.records) max_lane = std::max<int>(max_lane, r.pad);
    for (int lane = 1; lane <= max_lane; ++lane) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"progress %d\"}}",
                     run.world_size + lane - 1, lane - 1);
    }
    auto tid_of = [&](Record const& r) {
        return r.pad == 0 ? r.rank : run.world_size + r.pad - 1;
    };

    for (std::size_t i = 0; i < run.records.size(); ++i) {
        Record const& r = run.records[i];
        int const tid = tid_of(r);
        double const ts = r.vtime * 1e6;  // trace-event timestamps are in us
        auto const kind = static_cast<Ev>(r.kind);
        switch (kind) {
            case Ev::coll_enter:
                sep();
                std::fprintf(f,
                             "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.6f,\"name\":\"%s\","
                             "\"cat\":\"coll\",\"args\":{\"bytes\":%llu,\"seq\":%llu}}",
                             tid, ts, coll_name(r).c_str(),
                             static_cast<unsigned long long>(r.bytes),
                             static_cast<unsigned long long>(r.seq));
                break;
            case Ev::coll_exit:
                sep();
                std::fprintf(f, "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.6f}", tid, ts);
                break;
            case Ev::wait_begin:
                sep();
                std::fprintf(f,
                             "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.6f,"
                             "\"name\":\"wait\",\"cat\":\"p2p\"}",
                             tid, ts);
                break;
            case Ev::wait_end:
                sep();
                std::fprintf(f,
                             "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.6f,"
                             "\"args\":{\"wall_ns\":%llu}}",
                             tid, ts, static_cast<unsigned long long>(r.bytes));
                break;
            default:
                sep();
                std::fprintf(f,
                             "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.6f,\"name\":\"%s\","
                             "\"cat\":\"%s\",\"s\":\"t\",\"args\":{\"peer\":%d,\"tag\":%d,"
                             "\"bytes\":%llu,\"seq\":%llu}}",
                             tid, ts, ev_name(kind),
                             kind == Ev::send || kind == Ev::post || kind == Ev::recv_done
                                 ? "p2p"
                                 : "sched",
                             r.peer, r.tag, static_cast<unsigned long long>(r.bytes),
                             static_cast<unsigned long long>(r.seq));
                break;
        }
        if (flow_id[i] >= 0) {
            bool const start = kind == Ev::send;
            sep();
            std::fprintf(f,
                         "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.6f,\"name\":\"msg\","
                         "\"cat\":\"msg\",\"id\":%lld%s}",
                         start ? "s" : "f", tid, ts,
                         static_cast<long long>(flow_id[i]), start ? "" : ",\"bp\":\"e\"");
        }
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
}

}  // namespace

void end_universe(Universe& u) {
    bool traced = false;
    for (auto& rs : u.ranks) {
        if (rs->trace_ring != nullptr) traced = true;
    }
    if (!traced) return;

    std::lock_guard<std::mutex> lock(mutex());
    if (--g_active_universes <= 0) {
        g_active_universes = 0;
        g_on.store(false, std::memory_order_release);
    }

    LastRun run;
    run.valid = true;
    run.world_size = u.size;
    run.node_of_world = u.node_of_world;
    run.cfg = u.cfg;
    for (auto& rs : u.ranks) {
        if (rs->trace_ring == nullptr) continue;
        run.recorded += rs->trace_ring->recorded();
        run.dropped += rs->trace_ring->dropped();
        run.wait_ns += rs->wait_time_ns;
        auto snap = rs->trace_ring->snapshot();
        run.records.insert(run.records.end(), snap.begin(), snap.end());
        rs->trace_ring.reset();
    }
    // Progress-engine rings (their threads joined in progress::stop, before
    // this runs). Records keep the owning rank in Record::rank; the exporter
    // routes them to "progress <idx>" lanes via Record::pad.
    for (auto& ring : u.engine_trace_rings) {
        run.recorded += ring->recorded();
        run.dropped += ring->dropped();
        auto snap = ring->snapshot();
        run.records.insert(run.records.end(), snap.begin(), snap.end());
    }
    u.engine_trace_rings.clear();
    // Merge lanes into one timeline. stable_sort keeps each rank's records
    // in program order across equal timestamps.
    std::stable_sort(run.records.begin(), run.records.end(),
                     [](Record const& a, Record const& b) {
                         if (a.vtime != b.vtime) return a.vtime < b.vtime;
                         return a.rank < b.rank;
                     });
    if (!g_path.empty()) write_chrome_json(g_path, run);
    last_run_locked() = std::move(run);
}

LastRun last_run() {
    std::lock_guard<std::mutex> lock(mutex());
    return last_run_locked();
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t>
    g_hist[kHistFamilies][kHistMaxAlg][kHistSizeBuckets][kHistLatBuckets];

int size_bucket(std::size_t bytes) {
    int b = 0;
    while (bytes > 1 && b < kHistSizeBuckets - 1) {
        bytes >>= 1;
        ++b;
    }
    return b;
}

int lat_bucket(double elapsed) {
    double const ns = elapsed * 1e9;
    if (ns < 128.0) return 0;  // bucket 0: < 2^7 ns
    int b = 0;
    std::uint64_t n = static_cast<std::uint64_t>(ns) >> 7;
    while (n > 0 && b < kHistLatBuckets - 1) {
        n >>= 1;
        ++b;
    }
    return b;
}

}  // namespace

void hist_record(int family, int alg, std::size_t bytes, double elapsed) {
    if (family < 0 || family >= kHistFamilies || alg < 0 || alg >= kHistMaxAlg) return;
    g_hist[family][alg][size_bucket(bytes)][lat_bucket(elapsed)].fetch_add(
        1, std::memory_order_relaxed);
}

}  // namespace xmpi::detail::trace

// ---------------------------------------------------------------------------
// MPI_T-style pvar registry (global namespace: declared in xmpi/mpi.h).
// ---------------------------------------------------------------------------

namespace {

using xmpi::Counters;
using namespace xmpi::detail;

struct Pvar {
    std::string name;
    int value_count = 1;
    /// Writes exactly `value_count` values; returns an MPI error code.
    std::function<int(unsigned long long*)> read;
    /// Null when the variable is not resettable.
    std::function<int()> reset;
};

struct CounterField {
    char const* name;
    xmpi::Stat Counters::*field;
};

/// Every Counters field, by name. The static_assert below pins the struct
/// size so adding a counter without extending this table (and the legacy
/// stats structs' documentation) fails the build.
constexpr CounterField kCounterFields[] = {
    {"counters.p2p_messages", &Counters::p2p_messages},
    {"counters.p2p_bytes", &Counters::p2p_bytes},
    {"counters.coll_messages", &Counters::coll_messages},
    {"counters.coll_bytes", &Counters::coll_bytes},
    {"counters.intra_node_messages", &Counters::intra_node_messages},
    {"counters.intra_node_bytes", &Counters::intra_node_bytes},
    {"counters.schedule_builds", &Counters::schedule_builds},
    {"counters.schedule_cache_hits", &Counters::schedule_cache_hits},
    {"counters.schedule_cache_evictions", &Counters::schedule_cache_evictions},
    {"counters.schedule_peak_scratch_bytes.rank", &Counters::schedule_peak_scratch_bytes},
    {"counters.shm_copies", &Counters::shm_copies},
    {"counters.shm_copy_bytes", &Counters::shm_copy_bytes},
};

static_assert(sizeof(Counters) == 12 * sizeof(std::uint64_t),
              "a Counters field was added or removed: extend kCounterFields, the "
              "pvar registry docs and the test_trace coverage list");

int read_in_rank(std::function<unsigned long long(RankState*)> const& get,
                 unsigned long long* out) {
    RankState* const rs = tls_rank();
    if (rs == nullptr) return MPI_ERR_OTHER;
    *out = get(rs);
    return MPI_SUCCESS;
}

std::vector<Pvar> build_pvar_table() {
    std::vector<Pvar> t;

    for (auto const& cf : kCounterFields) {
        t.push_back({cf.name, 1,
                     [field = cf.field](unsigned long long* out) {
                         return read_in_rank(
                             [field](RankState* rs) {
                                 return static_cast<unsigned long long>(rs->counters.*field);
                             },
                             out);
                     },
                     nullptr});
    }
    // Satellite of ISSUE 8: Counters::schedule_peak_scratch_bytes is per-rank
    // state that RunResult aggregates by *max*. The `.rank` pvar above and
    // XMPI_T_sched_stats both report the calling rank's own peak; `.max`
    // reduces over every rank of the calling rank's universe. The reduction
    // reads peer counters without locks, so it is exact only at quiescent
    // points (between collectives / after joins) — same contract as
    // RunResult::total.
    t.push_back({"counters.schedule_peak_scratch_bytes.max", 1,
                 [](unsigned long long* out) {
                     return read_in_rank(
                         [](RankState* rs) {
                             unsigned long long peak = 0;
                             for (auto const& peer : rs->universe->ranks) {
                                 peak = std::max<unsigned long long>(
                                     peak, peer->counters.schedule_peak_scratch_bytes);
                             }
                             return peak;
                         },
                         out);
                 },
                 nullptr});

    t.push_back({"p2p.wait_time_ns", 1,
                 [](unsigned long long* out) {
                     if (tls_rank() != nullptr) {
                         *out = tls_rank()->wait_time_ns;
                         return MPI_SUCCESS;
                     }
                     auto const lr = trace::last_run();
                     *out = lr.wait_ns;
                     return MPI_SUCCESS;
                 },
                 [] {
                     RankState* const rs = tls_rank();
                     if (rs == nullptr) return MPI_ERR_OTHER;
                     rs->wait_time_ns = 0;
                     return MPI_SUCCESS;
                 }});

    auto sim_field = [](int idx) {
        return [idx](unsigned long long* out) {
            unsigned long long v[3] = {0, 0, 0};
            double makespan = 0.0;
            int const rc = XMPI_T_sim_stats(&v[0], &v[1], &v[2], &makespan);
            if (rc != MPI_SUCCESS) return rc;
            *out = idx < 3 ? v[idx]
                           : static_cast<unsigned long long>(makespan * 1e9);
            return MPI_SUCCESS;
        };
    };
    t.push_back({"sim.dry_builds", 1, sim_field(0), nullptr});
    t.push_back({"sim.tape_steps", 1, sim_field(1), nullptr});
    t.push_back({"sim.events", 1, sim_field(2), nullptr});
    t.push_back({"sim.last_makespan_ns", 1, sim_field(3), nullptr});

    auto tune_field = [](int idx) {
        return [idx](unsigned long long* out) {
            unsigned long long v[4] = {0, 0, 0, 0};
            int const rc = XMPI_T_tune_stats(&v[0], &v[1], &v[2], &v[3]);
            if (rc != MPI_SUCCESS) return rc;
            *out = v[idx];
            return MPI_SUCCESS;
        };
    };
    t.push_back({"tune.records", 1, tune_field(0), nullptr});
    t.push_back({"tune.probes", 1, tune_field(1), nullptr});
    t.push_back({"tune.demotions", 1, tune_field(2), nullptr});
    t.push_back({"tune.recoveries", 1, tune_field(3), nullptr});

    auto trace_field = [](bool dropped) {
        return [dropped](unsigned long long* out) {
            RankState* const rs = tls_rank();
            if (rs != nullptr && rs->trace_ring != nullptr) {
                *out = dropped ? rs->trace_ring->dropped() : rs->trace_ring->recorded();
                return MPI_SUCCESS;
            }
            auto const lr = trace::last_run();
            *out = dropped ? lr.dropped : lr.recorded;
            return MPI_SUCCESS;
        };
    };
    t.push_back({"trace.events_recorded", 1, trace_field(false), nullptr});
    t.push_back({"trace.events_dropped", 1, trace_field(true), nullptr});

    // Zero-copy shared-memory transport (src/xmpi/shm): effective
    // enablement plus the process-wide operation counts.
    t.push_back({"shm.enabled", 1,
                 [](unsigned long long* out) {
                     *out = shm::enabled() ? 1 : 0;
                     return MPI_SUCCESS;
                 },
                 nullptr});
    auto shm_field = [](int idx) {
        return [idx](unsigned long long* out) {
            shm::Stats const s = shm::stats();
            switch (idx) {
                case 0: *out = s.publishes; break;
                case 1: *out = s.copies; break;
                case 2: *out = s.copy_bytes; break;
                default: *out = s.drains; break;
            }
            return MPI_SUCCESS;
        };
    };
    t.push_back({"shm.publishes", 1, shm_field(0), nullptr});
    t.push_back({"shm.copies", 1, shm_field(1), nullptr});
    t.push_back({"shm.copy_bytes", 1, shm_field(2), nullptr});
    t.push_back({"shm.drains", 1, shm_field(3), nullptr});

    // Asynchronous progress engine (src/xmpi/progress): effective
    // enablement, the process-wide engine statistics, and the per-rank
    // count of wait/test-side progress calls (zero for a schedule the
    // engine owned — the overlap tests pin exactly that).
    t.push_back({"progress.enabled", 1,
                 [](unsigned long long* out) {
                     *out = progress::enabled() ? 1 : 0;
                     return MPI_SUCCESS;
                 },
                 nullptr});
    auto progress_field = [](int idx) {
        return [idx](unsigned long long* out) {
            progress::Stats const s = progress::stats();
            switch (idx) {
                case 0: *out = s.schedules_offloaded; break;
                case 1: *out = s.schedules_kept_sync; break;
                case 2: *out = s.steps_advanced; break;
                case 3: *out = s.completions; break;
                case 4: *out = s.wakeups; break;
                case 5: *out = s.idle_parks; break;
                default: *out = s.handoff_ns; break;
            }
            return MPI_SUCCESS;
        };
    };
    t.push_back({"progress.schedules_offloaded", 1, progress_field(0), nullptr});
    t.push_back({"progress.schedules_kept_sync", 1, progress_field(1), nullptr});
    t.push_back({"progress.steps_advanced", 1, progress_field(2), nullptr});
    t.push_back({"progress.completions", 1, progress_field(3), nullptr});
    t.push_back({"progress.wakeups", 1, progress_field(4), nullptr});
    t.push_back({"progress.idle_parks", 1, progress_field(5), nullptr});
    t.push_back({"progress.handoff_ns", 1, progress_field(6), nullptr});
    t.push_back({"progress.app_progress_calls", 1,
                 [](unsigned long long* out) {
                     return read_in_rank(
                         [](RankState* rs) {
                             return static_cast<unsigned long long>(rs->app_progress_calls);
                         },
                         out);
                 },
                 [] {
                     RankState* const rs = tls_rank();
                     if (rs == nullptr) return MPI_ERR_OTHER;
                     rs->app_progress_calls = 0;
                     return MPI_SUCCESS;
                 }});

    for (int f = 0; f < alg::kFamilies; ++f) {
        auto const fam = static_cast<alg::Family>(f);
        auto const& table = alg::algorithms(fam);
        for (std::size_t a = 0;
             a < table.size() && a < static_cast<std::size_t>(trace::kHistMaxAlg); ++a) {
            std::string name = "hist.";
            name += alg::family_name(fam);
            name += '.';
            name += table[a].name;
            t.push_back(
                {std::move(name), trace::kHistSizeBuckets * trace::kHistLatBuckets,
                 [f, a](unsigned long long* out) {
                     trace::hist_read(f, static_cast<int>(a), out);
                     return MPI_SUCCESS;
                 },
                 [f, a] {
                     trace::hist_reset(f, static_cast<int>(a));
                     return MPI_SUCCESS;
                 }});
        }
    }
    return t;
}

std::vector<Pvar> const& pvar_table() {
    static std::vector<Pvar> const t = build_pvar_table();
    return t;
}

}  // namespace

namespace xmpi::detail::trace {

void hist_read(int family, int alg, unsigned long long* out) {
    for (int s = 0; s < kHistSizeBuckets; ++s) {
        for (int l = 0; l < kHistLatBuckets; ++l) {
            *out++ = g_hist[family][alg][s][l].load(std::memory_order_relaxed);
        }
    }
}

void hist_reset(int family, int alg) {
    for (int s = 0; s < kHistSizeBuckets; ++s) {
        for (int l = 0; l < kHistLatBuckets; ++l) {
            g_hist[family][alg][s][l].store(0, std::memory_order_relaxed);
        }
    }
}

}  // namespace xmpi::detail::trace

int XMPI_T_pvar_num(int* num) {
    if (num == nullptr) return MPI_ERR_ARG;
    *num = static_cast<int>(pvar_table().size());
    return MPI_SUCCESS;
}

int XMPI_T_pvar_name(int index, char* name, int namelen, int* value_count) {
    auto const& t = pvar_table();
    if (index < 0 || index >= static_cast<int>(t.size())) return MPI_ERR_ARG;
    Pvar const& p = t[static_cast<std::size_t>(index)];
    if (name != nullptr && namelen > 0) {
        std::snprintf(name, static_cast<std::size_t>(namelen), "%s", p.name.c_str());
    }
    if (value_count != nullptr) *value_count = p.value_count;
    return MPI_SUCCESS;
}

int XMPI_T_pvar_read(int index, unsigned long long* values, int* count) {
    auto const& t = pvar_table();
    if (index < 0 || index >= static_cast<int>(t.size())) return MPI_ERR_ARG;
    if (values == nullptr || count == nullptr) return MPI_ERR_ARG;
    Pvar const& p = t[static_cast<std::size_t>(index)];
    if (*count < p.value_count) return MPI_ERR_ARG;
    int const rc = p.read(values);
    *count = rc == MPI_SUCCESS ? p.value_count : 0;
    return rc;
}

int XMPI_T_pvar_reset(int index) {
    auto const& t = pvar_table();
    if (index < 0 || index >= static_cast<int>(t.size())) return MPI_ERR_ARG;
    Pvar const& p = t[static_cast<std::size_t>(index)];
    if (!p.reset) return MPI_ERR_OTHER;
    return p.reset();
}

int XMPI_T_trace_stats(unsigned long long* recorded, unsigned long long* dropped,
                       unsigned long long* merged) {
    auto const lr = xmpi::detail::trace::last_run();
    if (recorded != nullptr) *recorded = lr.recorded;
    if (dropped != nullptr) *dropped = lr.dropped;
    if (merged != nullptr) *merged = static_cast<unsigned long long>(lr.records.size());
    return MPI_SUCCESS;
}

// ---------------------------------------------------------------------------
// Per-invocation critical-path attribution: replay the traced schedule tape
// of one collective through the LogP arithmetic the transport itself uses
// (deposit: t += o, arrival = t + alpha + beta*bytes; wait: t = max(t,
// arrival)), carrying a provenance chain so the finishing rank's makespan
// decomposes into named alpha/beta/o terms per tier.
// ---------------------------------------------------------------------------

namespace {

using xmpi::detail::trace::Ev;
using xmpi::detail::trace::Record;

struct ChainNode {
    int prev = -1;       // index of the predecessor node in the arena
    std::uint8_t term;   // 0 start-skew, 1 alpha, 2 beta, 3 o
    std::uint8_t tier;   // 0 inter, 1 intra
    double amount = 0.0;
};

struct ReplayStep {
    Ev kind;
    int peer;  // dest/src world rank for send/post; slot index for wait
    int tag;
    std::uint64_t bytes;
};

struct ReplayRank {
    int world = -1;
    double enter = 0.0;
    double exit_t = 0.0;
    std::vector<ReplayStep> steps;
    std::vector<std::size_t> posts;  // step index per slot, in post order
    double t = 0.0;
    int last = -1;  // newest chain node
    std::size_t pc = 0;
    bool blocked = false;
};

struct SentMsg {
    double t = 0.0;
    int node = -1;  // sender's chain node at the send
};

}  // namespace

int XMPI_T_trace_attribution(long long seq, XMPI_T_trace_attr* out) {
    if (out == nullptr) return MPI_ERR_ARG;
    auto const lr = xmpi::detail::trace::last_run();
    if (!lr.valid) return MPI_ERR_OTHER;

    if (seq < 0) {  // default: the last completed traced collective
        for (auto it = lr.records.rbegin(); it != lr.records.rend(); ++it) {
            if (it->kind == static_cast<std::uint8_t>(Ev::coll_exit)) {
                seq = static_cast<long long>(it->seq);
                break;
            }
        }
        if (seq < 0) return MPI_ERR_OTHER;
    }

    std::memset(out, 0, sizeof(*out));
    out->family = -1;
    out->alg = -1;

    // Collect, per participating rank, the *last* enter/exit pair carrying
    // `seq` and the schedule steps issued between them.
    std::map<int, ReplayRank> ranks;
    for (Record const& r : lr.records) {
        if (r.seq != static_cast<std::uint64_t>(seq)) continue;
        auto const kind = static_cast<Ev>(r.kind);
        if (kind == Ev::coll_enter) {
            ReplayRank& rr = ranks[r.rank];
            rr.world = r.rank;
            rr.enter = r.vtime;
            rr.steps.clear();
            rr.posts.clear();
            if (r.family != 0xff) out->family = r.family;
            if (r.alg != 0xff) out->alg = r.alg;
        } else if (kind == Ev::coll_exit) {
            auto it = ranks.find(r.rank);
            if (it != ranks.end()) it->second.exit_t = r.vtime;
        } else if (kind == Ev::step_send || kind == Ev::step_post || kind == Ev::step_wait ||
                   kind == Ev::step_copy_pub || kind == Ev::step_copy_get) {
            auto it = ranks.find(r.rank);
            if (it == ranks.end()) continue;
            ReplayRank& rr = it->second;
            if (kind == Ev::step_post) rr.posts.push_back(rr.steps.size());
            rr.steps.push_back({kind, r.peer, r.tag, r.bytes});
        }
    }
    if (ranks.empty()) return MPI_ERR_OTHER;

    double enter_min = std::numeric_limits<double>::infinity();
    double exit_max = 0.0;
    for (auto& [w, rr] : ranks) {
        enter_min = std::min(enter_min, rr.enter);
        exit_max = std::max(exit_max, rr.exit_t);
    }
    out->traced_makespan = exit_max - enter_min;

    auto tier_of = [&](int a, int b) -> int {
        auto const& nm = lr.node_of_world;
        if (nm.empty()) return 0;
        if (a < 0 || b < 0 || a >= static_cast<int>(nm.size()) ||
            b >= static_cast<int>(nm.size()))
            return 0;
        return nm[static_cast<std::size_t>(a)] == nm[static_cast<std::size_t>(b)] ? 1 : 0;
    };
    double const alpha[2] = {lr.cfg.alpha, lr.cfg.alpha_intra};
    double const beta[2] = {lr.cfg.beta, lr.cfg.beta_intra};
    double const o[2] = {lr.cfg.o, lr.cfg.o_intra};

    std::vector<ChainNode> nodes;
    auto push_node = [&](int prev, std::uint8_t term, std::uint8_t tier, double amount) {
        nodes.push_back({prev, term, tier, amount});
        return static_cast<int>(nodes.size()) - 1;
    };

    for (auto& [w, rr] : ranks) {
        double const skew = rr.enter - enter_min;
        rr.last = push_node(-1, 0, 0, skew);
        rr.t = skew;
    }

    auto msg_key = [](int src, int dst, int tag) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src) & 0xFFFF) << 48) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst) & 0xFFFFF) << 28) |
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag) & 0xFFFFFFF);
    };
    std::map<std::uint64_t, std::deque<SentMsg>> wire;
    // Shared-memory publishes: one entry per (producer, cell), read by every
    // consumer of the epoch (a publish is not consumed by its gets, unlike a
    // message — fanout readers all pair with the same publish).
    std::map<std::pair<int, int>, SentMsg> copy_wire;

    unsigned long long executed = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto& [w, rr] : ranks) {
            while (rr.pc < rr.steps.size()) {
                ReplayStep const& st = rr.steps[rr.pc];
                if (st.kind == Ev::step_send) {
                    int const tier = tier_of(rr.world, st.peer);
                    rr.last = push_node(rr.last, 3, static_cast<std::uint8_t>(tier), o[tier]);
                    rr.t += o[tier];
                    wire[msg_key(rr.world, st.peer, st.tag)].push_back({rr.t, rr.last});
                } else if (st.kind == Ev::step_copy_pub) {
                    // Publication costs the producer nothing; the cell
                    // becomes visible copy_sync later (priced at the get).
                    copy_wire[{rr.world, st.tag}] = {rr.t, rr.last};
                } else if (st.kind == Ev::step_copy_get) {
                    auto it = copy_wire.find({st.peer, st.tag});
                    if (it == copy_wire.end()) break;  // not published yet
                    double const arrival = it->second.t + lr.cfg.copy_sync;
                    if (arrival > rr.t) {
                        // The rendezvous gated this rank: the sync constant
                        // joins the intra alpha bucket, riding the
                        // producer's chain.
                        rr.last = push_node(it->second.node, 1, /*tier=*/1, lr.cfg.copy_sync);
                        rr.t = arrival;
                    }
                    rr.last = push_node(rr.last, 2, /*tier=*/1,
                                        lr.cfg.gamma_copy * static_cast<double>(st.bytes));
                    rr.t += lr.cfg.gamma_copy * static_cast<double>(st.bytes);
                } else if (st.kind == Ev::step_post) {
                    // Posting is free in the model; slot bookkeeping happened
                    // during collection.
                } else if (st.kind == Ev::step_wait) {
                    auto const slot = static_cast<std::size_t>(st.peer);
                    if (slot >= rr.posts.size()) break;  // malformed; stop this rank
                    ReplayStep const& post = rr.steps[rr.posts[slot]];
                    auto it = wire.find(msg_key(post.peer, rr.world, post.tag));
                    if (it == wire.end() || it->second.empty()) break;  // not sent yet
                    SentMsg const msg = it->second.front();
                    it->second.pop_front();
                    int const tier = tier_of(post.peer, rr.world);
                    double const arrival = msg.t + alpha[tier] + beta[tier] * post.bytes;
                    if (arrival > rr.t) {
                        int const an =
                            push_node(msg.node, 1, static_cast<std::uint8_t>(tier), alpha[tier]);
                        rr.last = push_node(an, 2, static_cast<std::uint8_t>(tier),
                                            beta[tier] * post.bytes);
                        rr.t = arrival;
                    }
                }
                ++rr.pc;
                ++executed;
                progress = true;
            }
        }
    }
    out->steps = executed;

    ReplayRank const* finisher = nullptr;
    for (auto& [w, rr] : ranks) {
        if (finisher == nullptr || rr.t > finisher->t) finisher = &rr;
    }
    out->replayed_makespan = finisher->t;

    for (int n = finisher->last; n >= 0; n = nodes[static_cast<std::size_t>(n)].prev) {
        ChainNode const& cn = nodes[static_cast<std::size_t>(n)];
        bool const intra = cn.tier == 1;
        switch (cn.term) {
            case 0: out->start_skew += cn.amount; break;
            case 1: (intra ? out->alpha_intra : out->alpha_inter) += cn.amount; break;
            case 2: (intra ? out->beta_intra : out->beta_inter) += cn.amount; break;
            case 3: (intra ? out->o_intra : out->o_inter) += cn.amount; break;
        }
    }
    out->attributed = out->alpha_inter + out->beta_inter + out->o_inter + out->alpha_intra +
                      out->beta_intra + out->o_intra;
    return MPI_SUCCESS;
}
