/// @file xmpi.hpp
/// @brief C++ driver API for the xmpi substrate: spawn a "universe" of ranks
/// (threads), configure the virtual-time cost model, and collect statistics.
///
/// Usage:
/// @code
///   auto result = xmpi::run(8, [](int rank) {
///       // rank code; may call any MPI_* function from <xmpi/mpi.h>
///   });
///   std::cout << result.max_vtime; // modeled parallel makespan
/// @endcode
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xmpi/mpi.h"

namespace xmpi {

/// Parameters of the LogP-style communication cost model and of the runtime.
///
/// Every message between ranks advances the receiver's virtual clock to at
/// least `sender_vtime + alpha + beta * bytes`; the sender pays `o` per
/// message. Local computation advances a rank's clock by its *thread CPU
/// time* multiplied by `compute_scale` (thread CPU time is immune to
/// oversubscribed scheduling, so a single-core host still attributes each
/// rank only its own work).
struct Config {
    /// Per-message latency in seconds (default calibrated to a 100 Gbit/s
    /// OmniPath-class interconnect as used in the paper's evaluation).
    /// On a hierarchical topology these three are the *inter-node* tier.
    double alpha = 2e-6;
    /// Per-byte transfer cost in seconds (~1.25 GB/s effective per pair).
    double beta = 8e-10;
    /// Sender-side per-message overhead in seconds.
    double o = 2e-7;
    /// @name Intra-node (shared-memory) tier, used for messages between
    /// ranks mapped to the same node by the topology subsystem. Defaults
    /// model a ~20 GB/s shared-memory transport with sub-microsecond
    /// latency. Ignored on a flat (single-tier) topology.
    /// @{
    double alpha_intra = 2e-7;
    double beta_intra = 5e-11;
    double o_intra = 5e-8;
    /// @}
    /// @name Copy tier, used by the shared-memory transport when an intra-node
    /// schedule step is a direct load/store into a peer rank's buffer instead
    /// of a simulated message. One synchronization constant per rendezvous
    /// plus a per-byte single-copy cost (~50 GB/s streaming memcpy). Disabled
    /// entirely by XMPI_SHM=0 / XMPI_T_shm_set(0).
    /// @{
    double gamma_copy = 2e-11;
    double copy_sync = 1e-7;
    /// @}
    /// Block rank->node mapping: node = world_rank / ranks_per_node (the
    /// last node may hold fewer ranks). <= 1 means a flat single-tier
    /// network. Overridable per process by XMPI_RANKS_PER_NODE / XMPI_NODES
    /// and the XMPI_T_topo_set() control call (which takes precedence).
    int ranks_per_node = 0;
    /// Multiplier applied to measured thread CPU time.
    double compute_scale = 1.0;
    /// Stack size per rank thread in bytes.
    std::size_t stack_size = 1u << 20;
    /// Modeled latency (seconds) of handing a schedule to the asynchronous
    /// progress engine and waking a parked progress thread. The offload
    /// gate keeps a schedule on the synchronous path when the transfer time
    /// the engine could hide is smaller than this wakeup cost (see
    /// XMPI_ASYNC_PROGRESS / XMPI_PROGRESS_MIN_BYTES in the README).
    double progress_wakeup = 1e-5;
};

/// One statistic cell of Counters: a relaxed atomic counter that copies by
/// value and converts like the plain integer it replaces. Counters used to
/// be plain uint64_t fields written only by the owning rank thread; with the
/// asynchronous progress engine a schedule may be advanced by a progress
/// thread concurrently with the owner's own point-to-point traffic, so each
/// cell is independently atomic (relaxed: these are statistics, ordering is
/// carried by the request-completion release/acquire pair).
struct Stat {
    std::atomic<std::uint64_t> v{0};

    Stat() = default;
    Stat(std::uint64_t x) : v(x) {}
    Stat(Stat const& o) : v(o.v.load(std::memory_order_relaxed)) {}
    Stat& operator=(Stat const& o) {
        v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
        return *this;
    }
    Stat& operator=(std::uint64_t x) {
        v.store(x, std::memory_order_relaxed);
        return *this;
    }
    operator std::uint64_t() const { return v.load(std::memory_order_relaxed); }
    std::uint64_t load() const { return v.load(std::memory_order_relaxed); }
    Stat& operator+=(std::uint64_t x) {
        v.fetch_add(x, std::memory_order_relaxed);
        return *this;
    }
    Stat& operator++() {
        v.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    /// Monotone maximum (used by the peak-scratch statistic, which may be
    /// probed concurrently by pvar readers).
    void merge_max(std::uint64_t x) {
        std::uint64_t cur = v.load(std::memory_order_relaxed);
        while (x > cur && !v.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
        }
    }
};

/// Per-rank communication counters, aggregated into RunResult.
struct Counters {
    Stat p2p_messages;
    Stat p2p_bytes;
    Stat coll_messages;
    Stat coll_bytes;
    /// Messages/bytes between ranks on the same node of the configured
    /// topology (always 0 on a flat topology). p2p and collective combined;
    /// the inter-node share is the total minus these.
    Stat intra_node_messages;
    Stat intra_node_bytes;
    /// @name Collective schedule-compilation accounting (also exposed inside
    /// a rank via XMPI_T_sched_stats). A "build" materializes a schedule's
    /// step program and arena (one-shot miss or persistent init); a "hit"
    /// serves a blocking/nonblocking collective by re-arming a cached
    /// schedule instead; an "eviction" drops a cache entry (LRU pressure or
    /// an epoch bump from XMPI_T_alg_set / env refresh / topology change).
    /// @{
    Stat schedule_builds;
    Stat schedule_cache_hits;
    Stat schedule_cache_evictions;
    /// Largest single-schedule scratch working set seen (bytes). Aggregated
    /// by max, not sum.
    Stat schedule_peak_scratch_bytes;
    /// @}
    /// @name Shared-memory transport accounting: direct peer-buffer copies
    /// performed by `copy` schedule steps (get side; publishes are free) and
    /// the bytes they moved. Always 0 with the transport disabled.
    /// @{
    Stat shm_copies;
    Stat shm_copy_bytes;
    /// @}

    Counters& operator+=(Counters const& other) {
        p2p_messages += other.p2p_messages;
        p2p_bytes += other.p2p_bytes;
        coll_messages += other.coll_messages;
        coll_bytes += other.coll_bytes;
        intra_node_messages += other.intra_node_messages;
        intra_node_bytes += other.intra_node_bytes;
        schedule_builds += other.schedule_builds;
        schedule_cache_hits += other.schedule_cache_hits;
        schedule_cache_evictions += other.schedule_cache_evictions;
        schedule_peak_scratch_bytes.merge_max(other.schedule_peak_scratch_bytes);
        shm_copies += other.shm_copies;
        shm_copy_bytes += other.shm_copy_bytes;
        return *this;
    }
};

/// Outcome of one universe execution.
struct RunResult {
    /// Maximum over all ranks of the final virtual clock: the modeled
    /// parallel makespan of the program under the cost model.
    double max_vtime = 0.0;
    /// Wall-clock seconds the universe took on the host.
    double wall_time = 0.0;
    /// Sum of all ranks' communication counters.
    Counters total;
    /// Per-rank final virtual times.
    std::vector<double> rank_vtimes;
};

/// Runs `body(rank)` on `num_ranks` concurrently executing ranks backed by
/// OS threads. Blocks until all ranks return. Exceptions thrown by rank
/// bodies are captured; the first one (by rank order) is rethrown after all
/// threads joined. Nested/repeated calls are allowed sequentially, not
/// concurrently.
RunResult run(int num_ranks, std::function<void(int)> const& body, Config const& config = {});

/// Convenience overload for bodies that query their rank via MPI_Comm_rank.
RunResult run(int num_ranks, std::function<void()> const& body, Config const& config = {});

/// @name In-rank introspection (callable from inside a rank body)
/// @{

/// The calling rank's current virtual time in seconds.
double vtime_now();
/// Adds `seconds` of modeled local work to the calling rank's clock
/// (used by benchmarks to model workload components not executed for real).
void vtime_add(double seconds);
/// The calling rank's communication counters so far.
Counters counters_now();
/// Monotonically increasing id of the current universe; used by layers above
/// to invalidate per-universe caches (e.g. the datatype pool).
std::uint64_t universe_id();
/// True when called from inside a rank body.
bool in_rank();
/// @}

}  // namespace xmpi
