/// @file mpi.h
/// @brief The classic MPI C API, implemented from scratch by the `xmpi`
/// substrate (threads-as-ranks, in-memory matching transport, virtual-time
/// cost model).
///
/// This header deliberately mirrors the signatures and semantics of the MPI
/// standard's C bindings so that (a) the KaMPIng-style C++ bindings in
/// `src/kamping/` sit on exactly the interface the paper targets and (b) the
/// "plain MPI" baseline implementations look like real MPI code.
///
/// Supported feature set (see DESIGN.md §2/§3): blocking and non-blocking
/// point-to-point communication including synchronous mode, probing, the full
/// set of collectives used by the paper (incl. v/w variants and
/// MPI_Ibarrier as a progressable request), derived datatypes with
/// pack/unpack, communicator management, distributed-graph topologies with
/// neighborhood collectives, user-defined reduction operations, and the ULFM
/// fault-tolerance extensions (MPIX_*).
#pragma once

#include <cstddef>
#include <functional>

// ---------------------------------------------------------------------------
// Handles. All handles are pointers to substrate-internal objects; the
// special constants below are sentinel values resolved at call time.
// ---------------------------------------------------------------------------
struct xmpi_comm_t;
struct xmpi_datatype_t;
struct xmpi_op_t;
struct xmpi_request_t;

using MPI_Comm = xmpi_comm_t*;
using MPI_Datatype = xmpi_datatype_t*;
using MPI_Op = xmpi_op_t*;
using MPI_Request = xmpi_request_t*;
using MPI_Aint = long long;

/// Completion/metadata record for receives and probes. `_bytes` is
/// substrate-internal (packed payload size) and consumed by MPI_Get_count.
struct MPI_Status {
    int MPI_SOURCE;
    int MPI_TAG;
    int MPI_ERROR;
    int _bytes;
};

/// Signature of user-defined reduction functions (as in the MPI standard).
using MPI_User_function = void(void* invec, void* inoutvec, int* len, MPI_Datatype* datatype);

// ---------------------------------------------------------------------------
// Special values
// ---------------------------------------------------------------------------
#define MPI_COMM_NULL ((MPI_Comm) nullptr)
#define MPI_COMM_WORLD ((MPI_Comm)0x1)
#define MPI_COMM_SELF ((MPI_Comm)0x2)

#define MPI_REQUEST_NULL ((MPI_Request) nullptr)
#define MPI_DATATYPE_NULL ((MPI_Datatype) nullptr)
#define MPI_OP_NULL ((MPI_Op) nullptr)

#define MPI_STATUS_IGNORE ((MPI_Status*) nullptr)
#define MPI_STATUSES_IGNORE ((MPI_Status*) nullptr)

#define MPI_IN_PLACE ((void*)-1)
#define MPI_BOTTOM ((void*) nullptr)

inline constexpr int MPI_ANY_SOURCE = -2;
inline constexpr int MPI_ANY_TAG = -1;
inline constexpr int MPI_PROC_NULL = -3;
inline constexpr int MPI_ROOT = -4;
inline constexpr int MPI_UNDEFINED = -32766;
inline constexpr int MPI_TAG_UB = (1 << 24);

// ---------------------------------------------------------------------------
// Error codes. xmpi always uses the "errors return" model; the C++ layers
// above translate non-success codes into exceptions.
// ---------------------------------------------------------------------------
inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_ERR_BUFFER = 1;
inline constexpr int MPI_ERR_COUNT = 2;
inline constexpr int MPI_ERR_TYPE = 3;
inline constexpr int MPI_ERR_TAG = 4;
inline constexpr int MPI_ERR_COMM = 5;
inline constexpr int MPI_ERR_RANK = 6;
inline constexpr int MPI_ERR_REQUEST = 7;
inline constexpr int MPI_ERR_ROOT = 8;
inline constexpr int MPI_ERR_OP = 9;
inline constexpr int MPI_ERR_ARG = 12;
inline constexpr int MPI_ERR_TRUNCATE = 15;
inline constexpr int MPI_ERR_OTHER = 16;
inline constexpr int MPI_ERR_INTERN = 17;
inline constexpr int MPI_ERR_PENDING = 18;
inline constexpr int MPI_ERR_IN_STATUS = 19;
// ULFM extension codes
inline constexpr int MPIX_ERR_PROC_FAILED = 75;
inline constexpr int MPIX_ERR_REVOKED = 76;

// ---------------------------------------------------------------------------
// Built-in datatypes (defined in datatype.cpp; immutable singletons).
// ---------------------------------------------------------------------------
extern MPI_Datatype MPI_CHAR;
extern MPI_Datatype MPI_SIGNED_CHAR;
extern MPI_Datatype MPI_UNSIGNED_CHAR;
extern MPI_Datatype MPI_BYTE;
extern MPI_Datatype MPI_SHORT;
extern MPI_Datatype MPI_UNSIGNED_SHORT;
extern MPI_Datatype MPI_INT;
extern MPI_Datatype MPI_UNSIGNED;
extern MPI_Datatype MPI_LONG;
extern MPI_Datatype MPI_UNSIGNED_LONG;
extern MPI_Datatype MPI_LONG_LONG;
extern MPI_Datatype MPI_UNSIGNED_LONG_LONG;
extern MPI_Datatype MPI_FLOAT;
extern MPI_Datatype MPI_DOUBLE;
extern MPI_Datatype MPI_LONG_DOUBLE;
extern MPI_Datatype MPI_INT8_T;
extern MPI_Datatype MPI_INT16_T;
extern MPI_Datatype MPI_INT32_T;
extern MPI_Datatype MPI_INT64_T;
extern MPI_Datatype MPI_UINT8_T;
extern MPI_Datatype MPI_UINT16_T;
extern MPI_Datatype MPI_UINT32_T;
extern MPI_Datatype MPI_UINT64_T;
extern MPI_Datatype MPI_CXX_BOOL;
extern MPI_Datatype MPI_AINT;

// ---------------------------------------------------------------------------
// Built-in reduction operations (defined in ops.cpp).
// ---------------------------------------------------------------------------
extern MPI_Op MPI_SUM;
extern MPI_Op MPI_PROD;
extern MPI_Op MPI_MAX;
extern MPI_Op MPI_MIN;
extern MPI_Op MPI_LAND;
extern MPI_Op MPI_LOR;
extern MPI_Op MPI_LXOR;
extern MPI_Op MPI_BAND;
extern MPI_Op MPI_BOR;
extern MPI_Op MPI_BXOR;

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------
int MPI_Init(int* argc, char*** argv);
int MPI_Finalize();
int MPI_Initialized(int* flag);
int MPI_Abort(MPI_Comm comm, int errorcode);
/// Returns the calling rank's *virtual* time (seconds) under the cost model.
double MPI_Wtime();

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------
int MPI_Comm_size(MPI_Comm comm, int* size);
int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
/// Splits by locality. MPI_COMM_TYPE_SHARED groups the ranks that share a
/// node of the configured hierarchical topology (every member of the result
/// can "share memory"); on a flat topology each rank ends up alone, as on a
/// machine with one process per node. `info` is accepted for signature
/// compatibility (pass MPI_INFO_NULL).
int MPI_Comm_split_type(MPI_Comm comm, int split_type, int key, int info, MPI_Comm* newcomm);
inline constexpr int MPI_COMM_TYPE_SHARED = 1;
int MPI_Comm_free(MPI_Comm* comm);
int MPI_Comm_compare(MPI_Comm c1, MPI_Comm c2, int* result);
inline constexpr int MPI_IDENT = 0;
inline constexpr int MPI_CONGRUENT = 1;
inline constexpr int MPI_SIMILAR = 2;
inline constexpr int MPI_UNEQUAL = 3;

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------
int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm);
int MPI_Ssend(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag, MPI_Comm comm,
             MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm,
              MPI_Request* request);
int MPI_Issend(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm,
               MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag, MPI_Comm comm,
              MPI_Request* request);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest, int sendtag,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status);
int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, int* count);

// ---------------------------------------------------------------------------
// Request completion
// ---------------------------------------------------------------------------
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses);
int MPI_Testall(int count, MPI_Request* requests, int* flag, MPI_Status* statuses);
int MPI_Waitany(int count, MPI_Request* requests, int* index, MPI_Status* status);
int MPI_Testany(int count, MPI_Request* requests, int* index, int* flag, MPI_Status* status);
int MPI_Waitsome(int incount, MPI_Request* requests, int* outcount, int* indices,
                 MPI_Status* statuses);
/// Releases a request. Freeing MPI_REQUEST_NULL is erroneous and returns
/// MPI_ERR_REQUEST (so a double free is well-defined: the first call nulls
/// the handle, the second reports the error). Freeing a persistent receive
/// whose current start has not matched yet cancels it; freeing a started
/// persistent collective first drives it to completion.
int MPI_Request_free(MPI_Request* request);

// ---------------------------------------------------------------------------
// Persistent communication. *_init calls create *inactive* persistent
// requests with a frozen communication spec; MPI_Start (or MPI_Startall)
// begins one occurrence of the operation, re-reading the bound user buffers.
// Completing a started persistent request through MPI_Wait*/MPI_Test*
// returns it to the inactive-but-allocated state (the handle stays valid and
// is NOT reset to MPI_REQUEST_NULL) so it can be started again;
// MPI_Request_free releases it. Waiting on or testing an inactive persistent
// request succeeds immediately with an empty status.
// ---------------------------------------------------------------------------
int MPI_Start(MPI_Request* request);
int MPI_Startall(int count, MPI_Request* requests);
int MPI_Send_init(const void* buf, int count, MPI_Datatype type, int dest, int tag, MPI_Comm comm,
                  MPI_Request* request);
int MPI_Recv_init(void* buf, int count, MPI_Datatype type, int source, int tag, MPI_Comm comm,
                  MPI_Request* request);

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------
int MPI_Barrier(MPI_Comm comm);
int MPI_Ibarrier(MPI_Comm comm, MPI_Request* request);
int MPI_Bcast(void* buf, int count, MPI_Datatype type, int root, MPI_Comm comm);
int MPI_Ibcast(void* buf, int count, MPI_Datatype type, int root, MPI_Comm comm,
               MPI_Request* request);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Gatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                const int* recvcounts, const int* displs, MPI_Datatype recvtype, int root,
                MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Scatterv(const void* sendbuf, const int* sendcounts, const int* displs,
                 MPI_Datatype sendtype, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 int root, MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Allgatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   const int* recvcounts, const int* displs, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                 int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Alltoallv(const void* sendbuf, const int* sendcounts, const int* sdispls,
                  MPI_Datatype sendtype, void* recvbuf, const int* recvcounts, const int* rdispls,
                  MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Alltoallw(const void* sendbuf, const int* sendcounts, const int* sdispls,
                  const MPI_Datatype* sendtypes, void* recvbuf, const int* recvcounts,
                  const int* rdispls, const MPI_Datatype* recvtypes, MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
               int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
                  MPI_Comm comm);
int MPI_Scan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
             MPI_Comm comm);
int MPI_Exscan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
               MPI_Comm comm);
int MPI_Reduce_scatter_block(const void* sendbuf, void* recvbuf, int recvcount, MPI_Datatype type,
                             MPI_Op op, MPI_Comm comm);

// Non-blocking collectives. Implemented as progressable generalized requests
// on the same internal point-to-point engine as their blocking counterparts
// (the MPI_Ibarrier pattern): the operation's communication schedule is
// materialized at initiation and executed incrementally as
// MPI_Wait*/MPI_Test* drive the request's progress state machine.
// Completion order across multiple outstanding collective requests is
// unconstrained (wait in any order, or use MPI_Waitall). Ibcast, Ireduce,
// Iallreduce, Iallgather and Ialltoall run the same selectable algorithms
// as the blocking calls (see XMPI_T_alg_* below); the remaining i-variants
// use flat (linear) schedules, the standard shape for nonblocking fallback
// implementations (cf. libNBC).
int MPI_Igather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm,
                MPI_Request* request);
int MPI_Igatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                 const int* recvcounts, const int* displs, MPI_Datatype recvtype, int root,
                 MPI_Comm comm, MPI_Request* request);
int MPI_Iscatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                 int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm,
                 MPI_Request* request);
int MPI_Iscatterv(const void* sendbuf, const int* sendcounts, const int* displs,
                  MPI_Datatype sendtype, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  int root, MPI_Comm comm, MPI_Request* request);
int MPI_Iallgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                   int recvcount, MPI_Datatype recvtype, MPI_Comm comm, MPI_Request* request);
int MPI_Iallgatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                    const int* recvcounts, const int* displs, MPI_Datatype recvtype, MPI_Comm comm,
                    MPI_Request* request);
int MPI_Ialltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm, MPI_Request* request);
int MPI_Ialltoallv(const void* sendbuf, const int* sendcounts, const int* sdispls,
                   MPI_Datatype sendtype, void* recvbuf, const int* recvcounts, const int* rdispls,
                   MPI_Datatype recvtype, MPI_Comm comm, MPI_Request* request);
int MPI_Ireduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
                int root, MPI_Comm comm, MPI_Request* request);
int MPI_Iallreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
                   MPI_Comm comm, MPI_Request* request);
int MPI_Iscan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
              MPI_Comm comm, MPI_Request* request);
int MPI_Iexscan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
                MPI_Comm comm, MPI_Request* request);

// Persistent collectives (MPI-4 *_init). Each call materializes the
// operation's full schedule ONCE — algorithm selection (cost model /
// XMPI_ALG_* / XMPI_T_alg_set) and topology composition are frozen at init
// time; later XMPI_T_alg_set / XMPI_T_alg_env_refresh calls do NOT affect a
// live persistent operation — and returns an inactive persistent request.
// Every MPI_Start replays the frozen step program: bound input buffers are
// re-read (input snapshots are execution-time steps, re-run per start) and
// scratch is re-armed, so starting with updated buffer contents yields the
// updated result. All ranks of the communicator must create their persistent
// collectives in the same order and start each one the same number of times
// (the operations of one request match each other round by round, FIFO).
// `info` is accepted for signature compatibility (pass MPI_INFO_NULL).
int MPI_Barrier_init(MPI_Comm comm, int info, MPI_Request* request);
int MPI_Bcast_init(void* buf, int count, MPI_Datatype type, int root, MPI_Comm comm, int info,
                   MPI_Request* request);
int MPI_Reduce_init(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
                    int root, MPI_Comm comm, int info, MPI_Request* request);
int MPI_Allreduce_init(const void* sendbuf, void* recvbuf, int count, MPI_Datatype type, MPI_Op op,
                       MPI_Comm comm, int info, MPI_Request* request);
int MPI_Allgather_init(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                       int recvcount, MPI_Datatype recvtype, MPI_Comm comm, int info,
                       MPI_Request* request);
int MPI_Alltoall_init(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                      int recvcount, MPI_Datatype recvtype, MPI_Comm comm, int info,
                      MPI_Request* request);
int MPI_Gather_init(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                    int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm, int info,
                    MPI_Request* request);
int MPI_Gatherv_init(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                     const int* recvcounts, const int* displs, MPI_Datatype recvtype, int root,
                     MPI_Comm comm, int info, MPI_Request* request);
int MPI_Scatter_init(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                     int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm, int info,
                     MPI_Request* request);
/// v-variant persistent collectives freeze the count/displacement arrays at
/// init time (they are read while building the schedule, not at start), so
/// the caller's arrays need not outlive the call.
int MPI_Scatterv_init(const void* sendbuf, const int* sendcounts, const int* displs,
                      MPI_Datatype sendtype, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                      int root, MPI_Comm comm, int info, MPI_Request* request);

// ---------------------------------------------------------------------------
// Collective algorithm control (MPI_T-style substrate extension).
//
// Bcast, reduce, allgather, allreduce and alltoall each have multiple
// registered algorithms (a flat reference plus binomial-tree, pipelined-
// ring, recursive-doubling, Rabenseifner and Bruck variants as applicable).
// By default every invocation picks the cheapest valid algorithm under the
// analytic α-β cost model for the universe's configured machine parameters.
// Two override channels exist:
//  - the XMPI_ALG_<FAMILY> environment variables (e.g. XMPI_ALG_ALLREDUCE=
//    rabenseifner), resolved once per process;
//  - XMPI_T_alg_set below, which takes precedence over the environment so
//    harnesses and benchmarks can pin algorithms programmatically.
// A pinned algorithm that is invalid for a given invocation (non-power-of-
// two communicator for recursive doubling/Rabenseifner, non-commutative or
// user-defined operations for the ring/Rabenseifner allreduce) falls back
// to cost-based selection
// among the valid ones, so pinning never breaks correctness.
// ---------------------------------------------------------------------------

/// Pins `algorithm` ("flat", "binomial", ...) for `family` ("bcast",
/// "reduce", "allgather", "allreduce", "alltoall"); NULL, "" or "auto"
/// restores cost-model selection. Unknown names return MPI_ERR_ARG.
int XMPI_T_alg_set(const char* family, const char* algorithm);
/// Reports the currently pinned algorithm for `family` ("auto" when
/// selection is automatic). The returned pointer is static storage.
int XMPI_T_alg_get(const char* family, const char** algorithm);
/// Writes the comma-separated names of `family`'s registered algorithms
/// into `buf` (MPI_ERR_ARG if `buflen` is too small).
int XMPI_T_alg_list(const char* family, char* buf, int buflen);
/// Reports the algorithm the cost model chose for the calling process's
/// most recent invocation of `family` (introspection for tests/benchmarks;
/// "none" before the first invocation). The pointer is static storage.
int XMPI_T_alg_selected(const char* family, const char** algorithm);
/// Discards the cached XMPI_ALG_* environment resolutions so the variables
/// are re-read (and an unknown name warns again) on the next selection.
/// Mainly for harnesses that mutate the environment mid-process. Affects
/// only *future* selections: live persistent operations (MPI_*_init) froze
/// their algorithm at init time and are not re-selected by a refresh.
int XMPI_T_alg_env_refresh(void);

// ---------------------------------------------------------------------------
// Schedule compilation control (MPI_T-style substrate extension).
//
// Blocking and MPI_I* invocations of the algorithm-backed collectives
// compile their communication schedule once and cache it per communicator,
// keyed by (family, algorithm, counts, datatype, op, root, buffer
// addresses); a repeat invocation re-arms the cached schedule instead of
// rebuilding it (the same amortization MPI_*_init offers, transparently).
// Entries are invalidated when any schedule-affecting control moves
// (XMPI_T_alg_set, XMPI_T_alg_env_refresh, XMPI_T_topo_set, the controls
// below). The cache can be disabled with XMPI_SCHED_CACHE=0 or
// XMPI_T_sched_cache_set(0).
//
// Segment-pipelined schedules (ring bcast, pipelined hierarchical
// allgather/alltoall) size their segments from the two-tier cost model;
// XMPI_SEGMENT_BYTES or XMPI_T_segment_set overrides the segment size in
// bytes. Invalid environment values (zero, negative, garbage) warn once on
// stderr and fall back to the cost model.
// ---------------------------------------------------------------------------

/// Pins the pipeline segment size in bytes for segmented schedules; 0
/// restores automatic sizing (environment, then cost model). Negative
/// values are rejected with MPI_ERR_ARG.
int XMPI_T_segment_set(long long bytes);
/// Reports the effective segment override in bytes (0 when automatic).
int XMPI_T_segment_get(long long* bytes);
/// Enables (1) / disables (0) the schedule cache; -1 restores automatic
/// resolution (XMPI_SCHED_CACHE, then enabled by default).
int XMPI_T_sched_cache_set(int enabled);
/// Reports whether the schedule cache is effectively enabled (0/1).
int XMPI_T_sched_cache_get(int* enabled);
/// Enables (1) / disables (0) the zero-copy shared-memory transport for
/// intra-node collective phases; -1 restores automatic resolution
/// (XMPI_SHM, then enabled by default). Disabling restores bit-identical
/// message-passing schedules. Takes effect at the next schedule build
/// (cached schedules are invalidated).
int XMPI_T_shm_set(int enabled);
/// Reports whether the shm transport is effectively enabled (0/1).
int XMPI_T_shm_get(int* enabled);
/// Enables (1) / disables (0) the asynchronous progress engine for
/// universes started after the call; -1 restores automatic resolution
/// (XMPI_ASYNC_PROGRESS, then off by default). With the engine on,
/// nonblocking and started-persistent collective schedules whose payload
/// clears XMPI_PROGRESS_MIN_BYTES are advanced by dedicated progress
/// threads, so they complete without any wait/test-side progress calls.
int XMPI_T_progress_set(int enabled);
/// Reports whether the progress engine is effectively enabled (0/1).
int XMPI_T_progress_get(int* enabled);
/// Reports the calling rank's schedule accounting (any pointer may be
/// null): schedules built, cache hits, cache evictions, and the largest
/// single-schedule scratch working set in bytes. Callable only from inside
/// a rank body (MPI_ERR_OTHER otherwise).
int XMPI_T_sched_stats(unsigned long long* builds, unsigned long long* cache_hits,
                       unsigned long long* cache_evictions,
                       unsigned long long* peak_scratch_bytes);

// ---------------------------------------------------------------------------
// Hierarchical topology control (MPI_T-style substrate extension).
//
// The topology subsystem (src/xmpi/topo/) maps world ranks onto nodes with a
// block mapping node = world_rank / ranks_per_node. Messages between ranks
// on the same node are priced with the intra-node machine parameters
// (Config::{alpha,beta,o}_intra); everything else uses the inter-node tier.
// Resolution order at universe creation: XMPI_T_topo_set() control value,
// then the XMPI_RANKS_PER_NODE environment variable, then XMPI_NODES
// (ceil(p / nodes) ranks per node), then Config::ranks_per_node. A value of
// 1 (or nothing configured) is the flat single-tier network.
// ---------------------------------------------------------------------------

/// Pins `ranks_per_node` for subsequently created universes; 0 restores
/// automatic resolution (environment, then Config). Negative values are
/// rejected with MPI_ERR_ARG.
int XMPI_T_topo_set(int ranks_per_node);
/// Reports the pinned ranks-per-node (0 when resolution is automatic).
int XMPI_T_topo_get(int* ranks_per_node);

// ---------------------------------------------------------------------------
// Virtual-time simulation control (MPI_T-style substrate extension).
//
// The discrete-event simulator (src/xmpi/sim/) dry-builds collective
// schedules at virtual communicator sizes far beyond what threads-as-ranks
// can materialize (10^4..10^6 ranks) and replays the resulting payload-free
// tapes under the two-tier cost model. Resolution order for the event limit
// is control call > XMPI_SIM_EVENT_LIMIT environment variable > unlimited;
// an invalid environment value warns once on stderr and falls back, the
// same path as the XMPI_ALG_* / tuning knobs.
// ---------------------------------------------------------------------------

/// Caps the number of tape events one simulation may execute (a runaway
/// guard for scripted sweeps): > 0 sets the cap, 0 means unlimited, -1
/// restores automatic resolution (XMPI_SIM_EVENT_LIMIT, then unlimited).
/// Values below -1 are rejected with MPI_ERR_ARG.
int XMPI_T_sim_event_limit_set(long long limit);
/// Reports the *effective* event limit (0 when unlimited).
int XMPI_T_sim_event_limit_get(long long* limit);
/// Reports process-wide simulator accounting (any pointer may be null):
/// per-rank dry schedule builds (counted separately from the real
/// compilations XMPI_T_sched_stats reports), recorded tape steps, executed
/// events, and the most recent simulation's makespan in virtual seconds.
/// Callable from anywhere, including outside rank bodies.
int XMPI_T_sim_stats(unsigned long long* dry_builds, unsigned long long* tape_steps,
                     unsigned long long* events, double* last_makespan);

// ---------------------------------------------------------------------------
// Self-tuning control (MPI_T-style substrate extension).
//
// The tuning subsystem (src/xmpi/tune/) layers measured machine parameters
// over the analytic cost model and closes the selection loop with measured
// makespans. The two-tier alpha/beta/o parameters resolve, per parameter,
// as: XMPI_T_tune_set pin > calibrated fit (XMPI_T_tune_calibrate) >
// XMPI_TUNE_PROFILE machine description > Config defaults — the same
// control > environment > default precedence as the topology knobs. A
// profile is a hostfile-style text file of "inter alpha=... beta=... o=..."
// / "intra ..." lines ('#' comments); a malformed profile warns once on
// stderr and is ignored whole.
//
// Selection feedback (default off; enabled by XMPI_TUNE=1 or
// XMPI_T_tune_set("feedback", 1)) records every executed blocking
// collective's measured virtual-time makespan into a per-(family,
// comm-size-bucket, message-size-bucket) table, demotes algorithms whose
// measured time is consistently beaten by a sampled alternative, and
// epsilon-greedily re-probes so demotions can recover. Any tuning change
// that can move selection bumps the schedule-cache epoch, so stale cached
// schedules are never replayed.
// ---------------------------------------------------------------------------

/// Pins one machine parameter ("alpha", "beta", "o", "alpha_intra",
/// "beta_intra", "o_intra") to `value` seconds (resp. seconds/byte), or the
/// feedback switch ("feedback", value 0/1). A negative value restores the
/// lower-precedence layers. Unknown keys are rejected with MPI_ERR_ARG.
int XMPI_T_tune_set(const char* key, double value);
/// Reports the effective layered value of `key` as selection would see it
/// over the default machine configuration ("feedback" reports 0/1).
int XMPI_T_tune_get(const char* key, double* value);
/// Runs the calibration pass on `comm` (collective over all its ranks;
/// callable only from inside a rank body, MPI_ERR_OTHER otherwise or when
/// comm has fewer than 2 ranks): rank 0 fits alpha/beta/o per tier from
/// isolated-send and two-size ping-pong probes against the first same-node
/// and first off-node peer; absent tiers keep their previous layers.
int XMPI_T_tune_calibrate(MPI_Comm comm);
/// Writes the effective two-tier parameters to `path` in the
/// XMPI_TUNE_PROFILE format (persist once, reuse via the environment).
int XMPI_T_tune_save(const char* path);
/// Reports process-wide feedback-loop accounting (any pointer may be
/// null): recorded makespans, probe decisions, demotions and recoveries.
int XMPI_T_tune_stats(unsigned long long* records, unsigned long long* probes,
                      unsigned long long* demotions, unsigned long long* recoveries);
/// Forgets measured state (calibrated fits, the feedback table, the stats
/// counters) while keeping control pins and the environment profile.
int XMPI_T_tune_reset(void);

// ---------------------------------------------------------------------------
// Event tracing + performance variables (MPI_T-style substrate extension).
//
// Setting XMPI_TRACE=<path> records every substrate event (p2p deposits and
// completions, schedule builds/cache hits/steps, collective entry/exit, tune
// decisions) into fixed-size per-rank ring buffers
// (XMPI_TRACE_RING_EVENTS events each, default 65536; a garbage value warns
// once and disables tracing for the run) and writes the merged timeline as
// Chrome trace-event JSON — loadable in Perfetto — when the universe ends.
// With XMPI_TRACE unset every hook compiles down to one relaxed atomic load.
// Both knobs are re-read after XMPI_T_alg_env_refresh.
//
// The pvar registry enumerates every substrate counter through one uniform
// handle-based interface. Naming scheme (dot-separated, stable):
//   counters.*      the calling rank's Counters fields (in-rank only).
//                   `schedule_peak_scratch_bytes.rank` is the calling rank's
//                   own peak — the value XMPI_T_sched_stats also reports —
//                   while `.max` reduces over all ranks of the universe, the
//                   same aggregation RunResult::total applies.
//   p2p.wait_time_ns  wall nanoseconds the rank spent blocked in wait/test
//                   (summed over all ranks of the last traced run when read
//                   outside a rank body).
//   sim.* tune.*    process-wide simulator / feedback-loop accounting (the
//                   XMPI_T_sim_stats / XMPI_T_tune_stats fields).
//   trace.*         ring accounting (events recorded / dropped).
//   hist.<family>.<alg>  log2-bucketed latency histogram: 25 payload-size
//                   buckets (log2 bytes, clamped to 24) x 16 latency buckets
//                   (log2 virtual ns, first bucket < 128 ns), size-major.
// ---------------------------------------------------------------------------

/// Reports the number of performance variables.
int XMPI_T_pvar_num(int* num);
/// Copies pvar `index`'s name into `name` (truncated to `namelen` bytes,
/// always NUL-terminated) and reports how many values a read returns.
int XMPI_T_pvar_name(int index, char* name, int namelen, int* value_count);
/// Reads pvar `index`: `*count` carries the capacity of `values` in and the
/// number of values written out. Per-rank variables return MPI_ERR_OTHER
/// outside a rank body.
int XMPI_T_pvar_read(int index, unsigned long long* values, int* count);
/// Resets pvar `index` (histograms and `p2p.wait_time_ns`); MPI_ERR_OTHER
/// for read-only variables.
int XMPI_T_pvar_reset(int index);
/// Reports the last traced run's ring accounting (any pointer may be null):
/// events recorded (including overwritten), events dropped to ring
/// overflow, and events retained in the merged timeline.
int XMPI_T_trace_stats(unsigned long long* recorded, unsigned long long* dropped,
                       unsigned long long* merged);

/// Critical-path attribution of one traced collective invocation (see
/// XMPI_T_trace_attribution).
typedef struct XMPI_T_trace_attr {
    double traced_makespan;   /* max rank exit vtime - min rank enter vtime */
    double replayed_makespan; /* makespan of the replayed schedule tape */
    double attributed;        /* alpha+beta+o total on the critical path */
    double alpha_inter;
    double beta_inter;
    double o_inter;
    double alpha_intra;
    double beta_intra;
    double o_intra;
    double start_skew; /* entry-time skew carried by the path's origin rank */
    unsigned long long steps; /* replayed tape steps across all ranks */
    int family; /* alg::Family of the attributed collective, -1 unknown */
    int alg;    /* selected algorithm index within the family, -1 unknown */
} XMPI_T_trace_attr;

/// Replays the schedule tape recorded for collective invocation `seq` of the
/// last traced run (seq < 0: the most recently completed traced collective)
/// through the transport's own LogP arithmetic and decomposes the finishing
/// rank's critical path into named alpha/beta/o terms per tier. Compute time
/// is not replayed, so observed-vs-attributed gaps surface real model
/// divergence. MPI_ERR_OTHER when no traced run or no matching collective
/// exists.
int XMPI_T_trace_attribution(long long seq, XMPI_T_trace_attr* out);

// ---------------------------------------------------------------------------
// Derived datatypes
// ---------------------------------------------------------------------------
int MPI_Type_contiguous(int count, MPI_Datatype oldtype, MPI_Datatype* newtype);
int MPI_Type_vector(int count, int blocklength, int stride, MPI_Datatype oldtype,
                    MPI_Datatype* newtype);
int MPI_Type_indexed(int count, const int* blocklengths, const int* displacements,
                     MPI_Datatype oldtype, MPI_Datatype* newtype);
int MPI_Type_create_struct(int count, const int* blocklengths, const MPI_Aint* displacements,
                           const MPI_Datatype* types, MPI_Datatype* newtype);
int MPI_Type_create_resized(MPI_Datatype oldtype, MPI_Aint lb, MPI_Aint extent,
                            MPI_Datatype* newtype);
int MPI_Type_commit(MPI_Datatype* type);
int MPI_Type_free(MPI_Datatype* type);
int MPI_Type_size(MPI_Datatype type, int* size);
int MPI_Type_get_extent(MPI_Datatype type, MPI_Aint* lb, MPI_Aint* extent);

// ---------------------------------------------------------------------------
// Reduction operations
// ---------------------------------------------------------------------------
int MPI_Op_create(MPI_User_function* fn, int commute, MPI_Op* op);
int MPI_Op_free(MPI_Op* op);
/// Substrate extension: reduction op backed by an arbitrary callable (used
/// by the C++ bindings to support capturing lambdas as reduction operations).
int XMPI_Op_create_fn(std::function<void(void*, void*, int*, MPI_Datatype*)> fn, int commute,
                      MPI_Op* op);

// ---------------------------------------------------------------------------
// Distributed-graph topology and neighborhood collectives
// ---------------------------------------------------------------------------
int MPI_Dist_graph_create_adjacent(MPI_Comm comm, int indegree, const int* sources,
                                   const int* sourceweights, int outdegree, const int* destinations,
                                   const int* destweights, int info, int reorder, MPI_Comm* newcomm);
int MPI_Dist_graph_neighbors_count(MPI_Comm comm, int* indegree, int* outdegree, int* weighted);
int MPI_Dist_graph_neighbors(MPI_Comm comm, int maxindegree, int* sources, int* sourceweights,
                             int maxoutdegree, int* destinations, int* destweights);
int MPI_Neighbor_alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                          int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Neighbor_alltoallv(const void* sendbuf, const int* sendcounts, const int* sdispls,
                           MPI_Datatype sendtype, void* recvbuf, const int* recvcounts,
                           const int* rdispls, MPI_Datatype recvtype, MPI_Comm comm);
/// Each rank sends the same `sendcount` elements to every destination and
/// receives one block per source into `recvbuf` (source order).
int MPI_Neighbor_allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                           void* recvbuf, int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
// Non-blocking neighborhood collectives: progressable generalized requests
// over the same schedules as the blocking calls.
int MPI_Ineighbor_allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                            void* recvbuf, int recvcount, MPI_Datatype recvtype, MPI_Comm comm,
                            MPI_Request* request);
int MPI_Ineighbor_alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                           void* recvbuf, int recvcount, MPI_Datatype recvtype, MPI_Comm comm,
                           MPI_Request* request);
inline constexpr int MPI_INFO_NULL = 0;

// ---------------------------------------------------------------------------
// ULFM fault-tolerance extensions (MPI 5.0 proposal / MPIX namespace)
// ---------------------------------------------------------------------------
int MPIX_Comm_revoke(MPI_Comm comm);
int MPIX_Comm_is_revoked(MPI_Comm comm, int* flag);
int MPIX_Comm_shrink(MPI_Comm comm, MPI_Comm* newcomm);
int MPIX_Comm_agree(MPI_Comm comm, int* flag);
int MPIX_Comm_failure_ack(MPI_Comm comm);
/// Substrate extension: the calling rank fails (terminates) immediately.
/// Peers observe MPIX_ERR_PROC_FAILED on operations involving this rank.
[[noreturn]] void XMPI_Die();
