/// @file ulfm.cpp
/// @brief User-Level Failure Mitigation (MPI 5.0 proposal): revoke, shrink,
/// agreement and failure acknowledgement, backed by the substrate's injected
/// rank-death mechanism (XMPI_Die in runtime.cpp).
#include <algorithm>
#include <vector>

#include "internal.hpp"

namespace xmpi::detail {

bool comm_revoked(MPI_Comm comm) {
    std::uint64_t const epoch = revoke_epoch();
    if (epoch != comm->seen_revoke_epoch) {
        comm->revoked_cached = context_revoked_slow(comm->context);
        comm->seen_revoke_epoch = epoch;
    }
    return comm->revoked_cached;
}

}  // namespace xmpi::detail

using namespace xmpi::detail;

int MPIX_Comm_revoke(MPI_Comm comm) {
    comm = resolve(comm);
    if (comm == nullptr) return MPI_ERR_COMM;
    revoke_context(comm->universe, comm->context);
    wake_all(comm->universe);
    return MPI_SUCCESS;
}

int MPIX_Comm_is_revoked(MPI_Comm comm, int* flag) {
    comm = resolve(comm);
    if (comm == nullptr || flag == nullptr) return MPI_ERR_COMM;
    *flag = comm_revoked(comm) ? 1 : 0;
    return MPI_SUCCESS;
}

int MPIX_Comm_failure_ack(MPI_Comm comm) {
    comm = resolve(comm);
    if (comm == nullptr) return MPI_ERR_COMM;
    comm->acked_failures.clear();
    for (int w : comm->group) {
        if (rank_dead(comm->universe, w)) comm->acked_failures.push_back(w);
    }
    return MPI_SUCCESS;
}

namespace {

/// Builds a temporary communicator over the surviving members of `comm`,
/// using the reserved context slots (+2 p2p, +3 collective) of the parent.
/// All survivors compute the identical group from the dead flags; tests
/// inject failures quiescently, which makes this deterministic.
MPI_Comm survivor_comm(MPI_Comm comm) {
    std::vector<int> alive;
    for (int w : comm->group) {
        if (!rank_dead(comm->universe, w)) alive.push_back(w);
    }
    return make_comm(comm->universe, comm->context + 2, std::move(alive),
                     comm->world_of(comm->rank()));
}

}  // namespace

int MPIX_Comm_shrink(MPI_Comm comm, MPI_Comm* newcomm) {
    comm = resolve(comm);
    if (comm == nullptr || newcomm == nullptr) return MPI_ERR_COMM;
    MPI_Comm tmp = survivor_comm(comm);
    int const ctx = agree_context(tmp);
    if (ctx < 0) {
        delete tmp;
        return MPI_ERR_INTERN;
    }
    *newcomm = make_comm(comm->universe, ctx, tmp->group, comm->world_of(comm->rank()));
    delete tmp;
    return MPI_SUCCESS;
}

int MPIX_Comm_agree(MPI_Comm comm, int* flag) {
    comm = resolve(comm);
    if (comm == nullptr || flag == nullptr) return MPI_ERR_COMM;
    MPI_Comm tmp = survivor_comm(comm);
    int const mine = *flag;
    int const rc = MPI_Allreduce(&mine, flag, 1, MPI_INT, MPI_BAND, tmp);
    delete tmp;
    return rc;
}
