/// @file bench_loc.cpp
/// @brief Regenerates Table I: lines of code of the three example programs
/// (vector allgather, sample sort, BFS) per binding. Counts the non-blank,
/// non-comment lines between the LOC-COUNT-BEGIN/END markers in the actual
/// implementation files compiled into this repository — the same code the
/// correctness tests and performance benchmarks run.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

/// Counts marker-delimited effective LoC in `path`. Returns the counts of
/// all marked regions (a file may contain several, e.g. bfs_variants.hpp).
std::map<std::string, int> count_marked_regions(std::string const& path) {
    std::ifstream in(path);
    std::map<std::string, int> regions;
    if (!in) {
        std::fprintf(stderr, "bench_loc: cannot open %s\n", path.c_str());
        return regions;
    }
    std::string line;
    std::string current;
    int count = 0;
    while (std::getline(in, line)) {
        if (line.find("LOC-COUNT-BEGIN") != std::string::npos) {
            auto const open = line.find('(');
            auto const close = line.rfind(')');
            current = open != std::string::npos && close != std::string::npos
                          ? line.substr(open + 1, close - open - 1)
                          : "unnamed";
            count = 0;
            continue;
        }
        if (line.find("LOC-COUNT-END") != std::string::npos) {
            if (!current.empty()) regions[current] = count;
            current.clear();
            continue;
        }
        if (current.empty()) continue;
        // Effective LoC: skip blank lines and pure comment lines.
        auto const first = line.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        if (line.compare(first, 2, "//") == 0) continue;
        ++count;
    }
    return regions;
}

struct Row {
    char const* example;
    std::map<std::string, int> paper;  // binding -> LoC reported in the paper
};

}  // namespace

int main(int argc, char** argv) {
    std::string const root = argc > 1 ? argv[1] : SOURCE_ROOT;
    std::vector<std::string> const files = {
        root + "/src/apps/include/apps/vector_allgather/vector_allgather.hpp",
        root + "/src/apps/include/apps/sample_sort/sort_mpi.hpp",
        root + "/src/apps/include/apps/sample_sort/sort_kamping.hpp",
        root + "/src/apps/include/apps/sample_sort/sort_boost.hpp",
        root + "/src/apps/include/apps/sample_sort/sort_mpl.hpp",
        root + "/src/apps/include/apps/sample_sort/sort_rwth.hpp",
        root + "/src/apps/include/apps/bfs/bfs_mpi.hpp",
        root + "/src/apps/include/apps/bfs/bfs_kamping.hpp",
        root + "/src/apps/include/apps/bfs/bfs_variants.hpp",
    };
    std::map<std::string, int> measured;
    for (auto const& f : files) {
        for (auto const& [name, loc] : count_marked_regions(f)) measured[name] = loc;
    }

    // Paper Table I reference values.
    struct Entry {
        char const* example;
        char const* binding;
        char const* key;
        int paper;
    };
    std::vector<Entry> const entries = {
        {"vector allgather", "MPI", "Table I: vector allgather, MPI", 14},
        {"vector allgather", "Boost.MPI", "Table I: vector allgather, Boost.MPI", 5},
        {"vector allgather", "RWTH-MPI", "Table I: vector allgather, RWTH-MPI", 5},
        {"vector allgather", "MPL", "Table I: vector allgather, MPL", 12},
        {"vector allgather", "KaMPIng", "Table I: vector allgather, KaMPIng", 1},
        {"sample sort", "MPI", "Table I: sample sort, MPI", 32},
        {"sample sort", "Boost.MPI", "Table I: sample sort, Boost.MPI", 30},
        {"sample sort", "RWTH-MPI", "Table I: sample sort, RWTH-MPI", 21},
        {"sample sort", "MPL", "Table I: sample sort, MPL", 37},
        {"sample sort", "KaMPIng", "Table I: sample sort, KaMPIng", 16},
        {"BFS", "MPI", "Table I: BFS, MPI", 46},
        {"BFS", "Boost.MPI", "Table I: BFS, Boost.MPI", 42},
        {"BFS", "RWTH-MPI", "Table I: BFS, RWTH-MPI", 32},
        {"BFS", "MPL", "Table I: BFS, MPL", 49},
        {"BFS", "KaMPIng", "Table I: BFS, KaMPIng", 22},
    };

    std::printf("=== Table I: lines of code per example and binding ===\n");
    std::printf("%-18s %-12s %10s %10s\n", "example", "binding", "paper", "this repo");
    char const* last = "";
    for (auto const& e : entries) {
        if (std::string(last) != e.example) std::printf("\n");
        last = e.example;
        auto it = measured.find(e.key);
        if (it == measured.end()) {
            std::printf("%-18s %-12s %10d %10s\n", e.example, e.binding, e.paper, "MISSING");
        } else {
            std::printf("%-18s %-12s %10d %10d\n", e.example, e.binding, e.paper, it->second);
        }
    }
    std::printf(
        "\nShape check (paper's trend): KaMPIng and RWTH-style overloads shortest, plain MPI and\n"
        "MPL (layout construction) longest. Absolute counts differ slightly from the paper's\n"
        "because the reimplemented baselines and formatting are not line-identical.\n");
    return 0;
}
