/// @file bench_overhead.cpp
/// @brief Backs the paper's central "(near) zero overhead" claim (§I, §IV):
/// google-benchmark comparison of wrapped calls vs. hand-rolled MPI against
/// the same substrate, for the hot collectives (allgatherv with known
/// counts, alltoallv with all parameters, allreduce, bcast) and for the
/// inference paths (allgatherv computing counts/displacements).
///
/// Methodology: each benchmark iteration spawns a 4-rank universe, runs a
/// warmup, then times `kInner` back-to-back operations on rank 0's clock
/// (all ranks participate). Reported time is per operation. Wrapper and
/// hand-rolled variants run the identical communication schedule, so any
/// difference is binding overhead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "kamping/kamping.hpp"
#include "xmpi/xmpi.hpp"

namespace {

constexpr int kRanks = 4;
constexpr int kInner = 40;

/// Runs `op(rank, iteration)` kInner times on a fresh universe and reports
/// rank 0's wall time per op to the benchmark state.
template <typename Op>
void drive(benchmark::State& state, Op&& op) {
    for (auto _ : state) {
        double elapsed = 0;
        xmpi::run(kRanks, [&](int rank) {
            op(rank, -1);  // warmup
            auto const t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kInner; ++i) op(rank, i);
            auto const t1 = std::chrono::steady_clock::now();
            if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / kInner;
        });
        state.SetIterationTime(elapsed);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}

// ---------------------------------------------------------------------------
// Allgatherv, counts known on both sides (pure wrapper overhead).
// ---------------------------------------------------------------------------

void BM_allgatherv_raw(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        std::vector<std::uint64_t> send(n, 7);
        std::vector<int> counts(kRanks, static_cast<int>(n)), displs(kRanks);
        std::exclusive_scan(counts.begin(), counts.end(), displs.begin(), 0);
        std::vector<std::uint64_t> recv(n * kRanks);
        MPI_Allgatherv(send.data(), static_cast<int>(n), MPI_UINT64_T, recv.data(), counts.data(),
                       displs.data(), MPI_UINT64_T, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_allgatherv_raw)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

void BM_allgatherv_kamping_counts_given(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> send(n, 7);
        std::vector<int> counts(kRanks, static_cast<int>(n));
        std::vector<std::uint64_t> recv(n * kRanks);
        comm.allgatherv(send_buf(send), recv_buf(recv), recv_counts(counts));
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_allgatherv_kamping_counts_given)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

// The convenience path: counts/displacements computed by the library (one
// extra allgather — visible, but identical to what the hand-rolled version
// in Fig. 2 must do anyway).
void BM_allgatherv_raw_with_count_exchange(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int rank, int) {
        std::vector<std::uint64_t> send(n, 7);
        std::vector<int> rc(kRanks), rd(kRanks);
        rc[rank] = static_cast<int>(n);
        MPI_Allgather(MPI_IN_PLACE, 0, MPI_DATATYPE_NULL, rc.data(), 1, MPI_INT, MPI_COMM_WORLD);
        std::exclusive_scan(rc.begin(), rc.end(), rd.begin(), 0);
        std::vector<std::uint64_t> recv(static_cast<std::size_t>(rc.back() + rd.back()));
        MPI_Allgatherv(send.data(), static_cast<int>(n), MPI_UINT64_T, recv.data(), rc.data(),
                       rd.data(), MPI_UINT64_T, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_allgatherv_raw_with_count_exchange)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

void BM_allgatherv_kamping_full_inference(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> send(n, 7);
        auto recv = comm.allgatherv(send_buf(send));
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_allgatherv_kamping_full_inference)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

// ---------------------------------------------------------------------------
// Alltoallv with every parameter given.
// ---------------------------------------------------------------------------

void BM_alltoallv_raw(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        std::vector<std::uint64_t> send(n * kRanks, 3);
        std::vector<int> counts(kRanks, static_cast<int>(n)), displs(kRanks);
        std::exclusive_scan(counts.begin(), counts.end(), displs.begin(), 0);
        std::vector<std::uint64_t> recv(n * kRanks);
        MPI_Alltoallv(send.data(), counts.data(), displs.data(), MPI_UINT64_T, recv.data(),
                      counts.data(), displs.data(), MPI_UINT64_T, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_alltoallv_raw)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

void BM_alltoallv_kamping_all_given(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> send(n * kRanks, 3);
        std::vector<int> counts(kRanks, static_cast<int>(n)), displs(kRanks);
        std::exclusive_scan(counts.begin(), counts.end(), displs.begin(), 0);
        std::vector<std::uint64_t> recv(n * kRanks);
        comm.alltoallv(send_buf(send), send_counts(counts), send_displs(displs), recv_buf(recv),
                       recv_counts(counts), recv_displs(displs));
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_alltoallv_kamping_all_given)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

// ---------------------------------------------------------------------------
// Allreduce and bcast.
// ---------------------------------------------------------------------------

void BM_allreduce_raw(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        std::vector<std::uint64_t> send(n, 1), recv(n);
        MPI_Allreduce(send.data(), recv.data(), static_cast<int>(n), MPI_UINT64_T, MPI_SUM,
                      MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_allreduce_raw)->Arg(1)->Arg(4096)->UseManualTime()->MinTime(0.05);

void BM_allreduce_kamping(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> send(n, 1), recv(n);
        comm.allreduce(send_buf(send), recv_buf(recv), op(std::plus<>{}));
        benchmark::DoNotOptimize(recv.data());
    });
}
BENCHMARK(BM_allreduce_kamping)->Arg(1)->Arg(4096)->UseManualTime()->MinTime(0.05);

void BM_bcast_raw(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        std::vector<std::uint64_t> data(n, 5);
        MPI_Bcast(data.data(), static_cast<int>(n), MPI_UINT64_T, 0, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(data.data());
    });
}
BENCHMARK(BM_bcast_raw)->Arg(1)->Arg(4096)->UseManualTime()->MinTime(0.05);

void BM_bcast_kamping(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int, int) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> data(n, 5);
        comm.bcast(send_recv_buf(data), send_recv_count(static_cast<int>(n)));
        benchmark::DoNotOptimize(data.data());
    });
}
BENCHMARK(BM_bcast_kamping)->Arg(1)->Arg(4096)->UseManualTime()->MinTime(0.05);

// ---------------------------------------------------------------------------
// Communication/computation overlap: a pipeline of allreduce + independent
// modeled work, blocking vs. the nonblocking i-variant. Reported time is the
// *virtual* makespan per pipeline iteration under a commodity-network cost
// model (the metric the overlap actually improves; wall time on an
// oversubscribed host says nothing about overlap).
// ---------------------------------------------------------------------------

constexpr int kPipelineIters = 10;
constexpr double kPipelineComputeSeconds = 500e-6;

xmpi::Config overlap_network() {
    xmpi::Config cfg;
    cfg.alpha = 50e-6;  // commodity-ethernet-class latency
    cfg.beta = 1e-8;    // ~100 MB/s effective per pair
    return cfg;
}

template <bool Overlap>
void BM_allreduce_compute_pipeline(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto result = xmpi::run(
            kRanks,
            [n](int rank) {
                using namespace kamping;
                Communicator comm;
                std::vector<std::uint64_t> data(n, static_cast<std::uint64_t>(rank));
                for (int it = 0; it < kPipelineIters; ++it) {
                    if constexpr (Overlap) {
                        auto pending = comm.iallreduce(send_buf(data), op(std::plus<>{}));
                        xmpi::vtime_add(kPipelineComputeSeconds);
                        auto reduced = pending.wait();
                        data[0] = reduced[0] & 0xff;
                    } else {
                        auto reduced = comm.allreduce(send_buf(data), op(std::plus<>{}));
                        xmpi::vtime_add(kPipelineComputeSeconds);
                        data[0] = reduced[0] & 0xff;
                    }
                }
            },
            overlap_network());
        state.SetIterationTime(result.max_vtime / kPipelineIters);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}

void BM_allreduce_compute_blocking(benchmark::State& state) {
    BM_allreduce_compute_pipeline<false>(state);
}
BENCHMARK(BM_allreduce_compute_blocking)->Arg(1024)->Arg(16384)->UseManualTime()->MinTime(0.05);

void BM_allreduce_compute_overlap(benchmark::State& state) {
    BM_allreduce_compute_pipeline<true>(state);
}
BENCHMARK(BM_allreduce_compute_overlap)->Arg(1024)->Arg(16384)->UseManualTime()->MinTime(0.05);

// ---------------------------------------------------------------------------
// Persistent vs re-issued nonblocking (BENCH_persistent.json): the same
// small-message allreduce iteration loop, once re-initiating an iallreduce
// every iteration (algorithm selection + schedule construction + scratch
// allocation per call) and once through a persistent allreduce_init handle
// started per iteration (selection and construction paid once, before the
// loop). Both run the identical communication schedule, so the wall-time
// difference is exactly the amortized initiation cost — the persistent
// collectives' raison d'être on small messages, where initiation rivals the
// transfer itself.
// ---------------------------------------------------------------------------

void BM_allreduce_iallreduce_reissued(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        double elapsed = 0;
        xmpi::run(kRanks, [&](int rank) {
            using namespace kamping;
            Communicator comm;
            std::vector<std::uint64_t> send(n, 1);
            comm.iallreduce(send_buf(send), op(std::plus<>{})).wait();  // warmup
            auto const t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kInner; ++i) {
                auto pending = comm.iallreduce(send_buf(send), op(std::plus<>{}));
                auto reduced = pending.wait();
                benchmark::DoNotOptimize(reduced.data());
            }
            auto const t1 = std::chrono::steady_clock::now();
            if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / kInner;
        });
        state.SetIterationTime(elapsed);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}
BENCHMARK(BM_allreduce_iallreduce_reissued)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

void BM_allreduce_persistent(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        double elapsed = 0;
        xmpi::run(kRanks, [&](int rank) {
            using namespace kamping;
            Communicator comm;
            std::vector<std::uint64_t> send(n, 1);
            auto handle = comm.allreduce_init(send_buf(send), op(std::plus<>{}));
            handle.start();
            handle.wait();  // warmup
            auto const t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kInner; ++i) {
                handle.start();
                auto const& reduced = handle.wait();
                benchmark::DoNotOptimize(reduced.data());
            }
            auto const t1 = std::chrono::steady_clock::now();
            if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / kInner;
        });
        state.SetIterationTime(elapsed);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}
BENCHMARK(BM_allreduce_persistent)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

// ---------------------------------------------------------------------------
// Schedule cache (BENCH_pipeline.json): the same blocking small-message
// allreduce loop with the per-communicator schedule cache pinned off
// (every call selects + builds the step program + allocates arena scratch)
// and on (repeat calls re-arm the cached schedule; only selection and the
// cache probe remain per call). Both run the identical communication
// schedule, so the wall-time difference is the amortized compilation cost —
// the transparent counterpart of BM_allreduce_persistent's win, available
// to plain MPI_Allreduce calls with stable buffers.
// ---------------------------------------------------------------------------

void allreduce_blocking_cache_bench(benchmark::State& state, int cache_enabled) {
    auto const n = static_cast<std::size_t>(state.range(0));
    XMPI_T_sched_cache_set(cache_enabled);
    for (auto _ : state) {
        double elapsed = 0;
        xmpi::run(kRanks, [&](int rank) {
            std::vector<std::uint64_t> send(n, 1), recv(n);
            MPI_Allreduce(send.data(), recv.data(), static_cast<int>(n), MPI_UINT64_T, MPI_SUM,
                          MPI_COMM_WORLD);  // warmup (populates the cache)
            auto const t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kInner; ++i) {
                MPI_Allreduce(send.data(), recv.data(), static_cast<int>(n), MPI_UINT64_T,
                              MPI_SUM, MPI_COMM_WORLD);
                benchmark::DoNotOptimize(recv.data());
            }
            auto const t1 = std::chrono::steady_clock::now();
            if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / kInner;
        });
        state.SetIterationTime(elapsed);
    }
    XMPI_T_sched_cache_set(-1);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}

void BM_allreduce_blocking_uncached(benchmark::State& state) {
    allreduce_blocking_cache_bench(state, 0);
}
void BM_allreduce_blocking_cached(benchmark::State& state) {
    allreduce_blocking_cache_bench(state, 1);
}
BENCHMARK(BM_allreduce_blocking_uncached)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);
BENCHMARK(BM_allreduce_blocking_cached)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

// ---------------------------------------------------------------------------
// Pipelined hierarchical allgather/alltoall (BENCH_pipeline.json): virtual
// makespan of one collective on a modeled 2 nodes x 4 ranks machine with
// the hierarchical composition pinned, once with the pipeline disabled (a
// segment pin of 1 GiB >= any message degenerates to the PR-3 unpipelined
// composition) and once with automatic cost-model segmentation. The win is
// the intra-node share-back/gather hidden behind the leader exchange.
// ---------------------------------------------------------------------------

constexpr int kPipeRanks = 8;
constexpr int kPipeRanksPerNode = 4;

template <typename Op>
void drive_vtime_pipelined(benchmark::State& state, char const* family, long long seg_bytes,
                           Op&& op) {
    if (XMPI_T_alg_set(family, "hierarchical") != MPI_SUCCESS) {
        state.SkipWithError("unknown algorithm");
        return;
    }
    XMPI_T_topo_set(kPipeRanksPerNode);
    XMPI_T_segment_set(seg_bytes);
    xmpi::Config cfg;
    cfg.compute_scale = 0.0;
    for (auto _ : state) {
        auto result = xmpi::run(
            kPipeRanks, [&](int rank) { op(rank, 0); }, cfg);
        state.SetIterationTime(result.max_vtime);
    }
    XMPI_T_segment_set(0);
    XMPI_T_topo_set(0);
    XMPI_T_alg_set(family, "auto");
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}

void allgather_pipe_bench(benchmark::State& state, long long seg_bytes) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive_vtime_pipelined(state, "allgather", seg_bytes, [n](int rank, int) {
        std::vector<std::uint64_t> send(n, static_cast<std::uint64_t>(rank));
        std::vector<std::uint64_t> recv(n * kPipeRanks);
        MPI_Allgather(send.data(), static_cast<int>(n), MPI_UINT64_T, recv.data(),
                      static_cast<int>(n), MPI_UINT64_T, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}

void BM_allgather_hier_unpipelined(benchmark::State& state) {
    allgather_pipe_bench(state, 1LL << 30);
}
void BM_allgather_hier_pipelined(benchmark::State& state) { allgather_pipe_bench(state, 0); }
BENCHMARK(BM_allgather_hier_unpipelined)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_allgather_hier_pipelined)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);

void alltoall_pipe_bench(benchmark::State& state, long long seg_bytes) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive_vtime_pipelined(state, "alltoall", seg_bytes, [n](int rank, int) {
        std::vector<std::uint64_t> send(n * kPipeRanks, static_cast<std::uint64_t>(rank));
        std::vector<std::uint64_t> recv(n * kPipeRanks);
        MPI_Alltoall(send.data(), static_cast<int>(n), MPI_UINT64_T, recv.data(),
                     static_cast<int>(n), MPI_UINT64_T, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}

void BM_alltoall_hier_unpipelined(benchmark::State& state) {
    alltoall_pipe_bench(state, 1LL << 30);
}
void BM_alltoall_hier_pipelined(benchmark::State& state) { alltoall_pipe_bench(state, 0); }
BENCHMARK(BM_alltoall_hier_unpipelined)->Arg(8192)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_alltoall_hier_pipelined)->Arg(8192)->Arg(262144)->UseManualTime()->Iterations(3);

// ---------------------------------------------------------------------------
// Collective algorithm comparison: the same operation under each pinned
// algorithm (XMPI_T_alg_set), reported as *virtual* makespan per operation
// under the default OmniPath-class cost model — the metric the algorithm
// selection layer optimizes. "flat" is the PR-1 reference; the cost-model
// default ("auto") picks per message size and must match the best column.
// ---------------------------------------------------------------------------

template <typename Op>
void drive_vtime_pinned(benchmark::State& state, char const* family, char const* alg, Op&& op) {
    if (XMPI_T_alg_set(family, alg) != MPI_SUCCESS) {
        state.SkipWithError("unknown algorithm");
        return;
    }
    for (auto _ : state) {
        auto result = xmpi::run(kRanks, [&](int rank) {
            for (int i = 0; i < kInner; ++i) op(rank, i);
        });
        state.SetIterationTime(result.max_vtime / kInner);
    }
    XMPI_T_alg_set(family, "auto");
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}

void allreduce_alg_bench(benchmark::State& state, char const* alg) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive_vtime_pinned(state, "allreduce", alg, [n](int, int) {
        std::vector<std::uint64_t> send(n, 1), recv(n);
        MPI_Allreduce(send.data(), recv.data(), static_cast<int>(n), MPI_UINT64_T, MPI_SUM,
                      MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}

void BM_allreduce_alg_flat(benchmark::State& state) { allreduce_alg_bench(state, "flat"); }
void BM_allreduce_alg_binomial(benchmark::State& state) { allreduce_alg_bench(state, "binomial"); }
void BM_allreduce_alg_rdoubling(benchmark::State& state) { allreduce_alg_bench(state, "rdoubling"); }
void BM_allreduce_alg_rabenseifner(benchmark::State& state) {
    allreduce_alg_bench(state, "rabenseifner");
}
void BM_allreduce_alg_auto(benchmark::State& state) { allreduce_alg_bench(state, "auto"); }
BENCHMARK(BM_allreduce_alg_flat)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->MinTime(0.05);
BENCHMARK(BM_allreduce_alg_binomial)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->MinTime(0.05);
BENCHMARK(BM_allreduce_alg_rdoubling)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->MinTime(0.05);
BENCHMARK(BM_allreduce_alg_rabenseifner)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->MinTime(0.05);
BENCHMARK(BM_allreduce_alg_auto)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->MinTime(0.05);

void alltoall_alg_bench(benchmark::State& state, char const* alg) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive_vtime_pinned(state, "alltoall", alg, [n](int, int) {
        std::vector<std::uint64_t> send(n * kRanks, 3), recv(n * kRanks);
        MPI_Alltoall(send.data(), static_cast<int>(n), MPI_UINT64_T, recv.data(),
                     static_cast<int>(n), MPI_UINT64_T, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}

void BM_alltoall_alg_flat(benchmark::State& state) { alltoall_alg_bench(state, "flat"); }
void BM_alltoall_alg_bruck(benchmark::State& state) { alltoall_alg_bench(state, "bruck"); }
void BM_alltoall_alg_auto(benchmark::State& state) { alltoall_alg_bench(state, "auto"); }
BENCHMARK(BM_alltoall_alg_flat)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);
BENCHMARK(BM_alltoall_alg_bruck)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);
BENCHMARK(BM_alltoall_alg_auto)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->MinTime(0.05);

// ---------------------------------------------------------------------------
// Hierarchical topology (BENCH_hierarchy.json): virtual makespan on a
// modeled 5 nodes x 4 ranks machine, per pinned algorithm and for the
// topology-aware automatic selection. compute_scale=0 isolates the two-tier
// network model (the acceptance comparison); "auto" must track the best
// column, picking the hierarchical composition where the topology makes it
// win and falling back to the flat registry elsewhere.
// ---------------------------------------------------------------------------

constexpr int kHierRanks = 20;
constexpr int kHierRanksPerNode = 4;

template <typename Op>
void drive_vtime_hier(benchmark::State& state, char const* family, char const* alg, Op&& op) {
    if (XMPI_T_alg_set(family, alg) != MPI_SUCCESS) {
        state.SkipWithError("unknown algorithm");
        return;
    }
    XMPI_T_topo_set(kHierRanksPerNode);
    xmpi::Config cfg;
    cfg.compute_scale = 0.0;
    for (auto _ : state) {
        // One operation per universe: the reported makespan is the cost of a
        // single collective, the quantity the analytic model prices
        // (back-to-back repetitions would pipeline across instances and
        // amortize every algorithm's fill latency away).
        auto result = xmpi::run(
            kHierRanks, [&](int rank) { op(rank, 0); }, cfg);
        state.SetIterationTime(result.max_vtime);
    }
    XMPI_T_topo_set(0);
    XMPI_T_alg_set(family, "auto");
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(std::uint64_t)));
}

void allreduce_hier_bench(benchmark::State& state, char const* alg) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive_vtime_hier(state, "allreduce", alg, [n](int, int) {
        std::vector<std::uint64_t> send(n, 1), recv(n);
        MPI_Allreduce(send.data(), recv.data(), static_cast<int>(n), MPI_UINT64_T, MPI_SUM,
                      MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}

void BM_allreduce_hier_flat(benchmark::State& state) { allreduce_hier_bench(state, "flat"); }
void BM_allreduce_hier_binomial(benchmark::State& state) {
    allreduce_hier_bench(state, "binomial");
}
void BM_allreduce_hier_ring(benchmark::State& state) { allreduce_hier_bench(state, "ring"); }
void BM_allreduce_hier_hierarchical(benchmark::State& state) {
    allreduce_hier_bench(state, "hierarchical");
}
void BM_allreduce_hier_auto(benchmark::State& state) { allreduce_hier_bench(state, "auto"); }
BENCHMARK(BM_allreduce_hier_flat)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_allreduce_hier_binomial)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_allreduce_hier_ring)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_allreduce_hier_hierarchical)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_allreduce_hier_auto)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);

void bcast_hier_bench(benchmark::State& state, char const* alg) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive_vtime_hier(state, "bcast", alg, [n](int, int) {
        std::vector<std::uint64_t> buf(n, 5);
        MPI_Bcast(buf.data(), static_cast<int>(n), MPI_UINT64_T, 0, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(buf.data());
    });
}

void BM_bcast_hier_flat(benchmark::State& state) { bcast_hier_bench(state, "flat"); }
void BM_bcast_hier_binomial(benchmark::State& state) { bcast_hier_bench(state, "binomial"); }
void BM_bcast_hier_ring(benchmark::State& state) { bcast_hier_bench(state, "ring"); }
void BM_bcast_hier_hierarchical(benchmark::State& state) {
    bcast_hier_bench(state, "hierarchical");
}
void BM_bcast_hier_auto(benchmark::State& state) { bcast_hier_bench(state, "auto"); }
BENCHMARK(BM_bcast_hier_flat)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_bcast_hier_binomial)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_bcast_hier_ring)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_bcast_hier_hierarchical)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);
BENCHMARK(BM_bcast_hier_auto)->Arg(1)->Arg(4096)->Arg(262144)->UseManualTime()->Iterations(3);

void alltoall_hier_bench(benchmark::State& state, char const* alg) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive_vtime_hier(state, "alltoall", alg, [n](int, int) {
        std::vector<std::uint64_t> send(n * kHierRanks, 3), recv(n * kHierRanks);
        MPI_Alltoall(send.data(), static_cast<int>(n), MPI_UINT64_T, recv.data(),
                     static_cast<int>(n), MPI_UINT64_T, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    });
}

void BM_alltoall_hier_flat(benchmark::State& state) { alltoall_hier_bench(state, "flat"); }
void BM_alltoall_hier_bruck(benchmark::State& state) { alltoall_hier_bench(state, "bruck"); }
void BM_alltoall_hier_hierarchical(benchmark::State& state) {
    alltoall_hier_bench(state, "hierarchical");
}
void BM_alltoall_hier_auto(benchmark::State& state) { alltoall_hier_bench(state, "auto"); }
BENCHMARK(BM_alltoall_hier_flat)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->Iterations(3);
BENCHMARK(BM_alltoall_hier_bruck)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->Iterations(3);
BENCHMARK(BM_alltoall_hier_hierarchical)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->Iterations(3);
BENCHMARK(BM_alltoall_hier_auto)->Arg(1)->Arg(64)->Arg(4096)->UseManualTime()->Iterations(3);

// ---------------------------------------------------------------------------
// Trace-overhead smoke (BENCH_trace.json): invoked as `bench_overhead
// --trace-smoke [out.json]` instead of the google-benchmark suite. Measures
// the 1-element persistent-allreduce loop (the most instrumentation-dense
// hot path: arm + step events every start) with XMPI_TRACE unset and set,
// then runs one traced hierarchical allreduce and decomposes its makespan
// via XMPI_T_trace_attribution. Exits nonzero when the attribution explains
// less than 95% of the traced makespan.
// ---------------------------------------------------------------------------

double persistent_allreduce_rep() {
    double elapsed = 0;
    xmpi::run(kRanks, [&](int rank) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> send(1, 1);
        auto handle = comm.allreduce_init(send_buf(send), op(std::plus<>{}));
        handle.start();
        handle.wait();  // warmup
        auto const t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kInner; ++i) {
            handle.start();
            auto const& reduced = handle.wait();
            benchmark::DoNotOptimize(reduced.data());
        }
        auto const t1 = std::chrono::steady_clock::now();
        if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / kInner;
    });
    return elapsed;
}

/// Best-of-N wall time per op: the minimum is the least-noisy estimator for
/// a loop this short.
double persistent_allreduce_best(int reps) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) best = std::min(best, persistent_allreduce_rep());
    return best;
}

int trace_smoke(char const* out_path) {
    constexpr int kReps = 15;

    unsetenv("XMPI_TRACE");
    XMPI_T_alg_env_refresh();
    double const off = persistent_allreduce_best(kReps);

    char const* const scratch_trace = "bench_trace_smoke.json";
    setenv("XMPI_TRACE", scratch_trace, 1);
    XMPI_T_alg_env_refresh();
    double const on = persistent_allreduce_best(kReps);

    // One traced hierarchical allreduce on a 2-node topology, pure
    // communication (compute_scale = 0), decomposed by the replay.
    XMPI_T_topo_set(2);
    XMPI_T_alg_set("allreduce", "hierarchical");
    xmpi::Config cfg;
    cfg.compute_scale = 0.0;
    xmpi::run(
        kRanks,
        [](int rank) {
            std::vector<std::uint64_t> send(8192, static_cast<std::uint64_t>(rank + 1));
            std::vector<std::uint64_t> recv(8192, 0);
            MPI_Allreduce(send.data(), recv.data(), 8192, MPI_UINT64_T, MPI_SUM,
                          MPI_COMM_WORLD);
            benchmark::DoNotOptimize(recv.data());
        },
        cfg);
    XMPI_T_trace_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    int const rc = XMPI_T_trace_attribution(-1, &attr);

    XMPI_T_alg_set("allreduce", nullptr);
    XMPI_T_topo_set(0);
    unsetenv("XMPI_TRACE");
    XMPI_T_alg_env_refresh();
    std::remove(scratch_trace);

    double const overhead_pct = off > 0 ? (on - off) / off * 100.0 : 0.0;
    double const ratio = rc == MPI_SUCCESS && attr.traced_makespan > 0
                             ? attr.attributed / attr.traced_makespan
                             : 0.0;

    std::FILE* const f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "trace-smoke: cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"trace\",\n"
                 "  \"persistent_allreduce_1elem\": {\n"
                 "    \"ranks\": %d,\n"
                 "    \"inner_iterations\": %d,\n"
                 "    \"repetitions\": %d,\n"
                 "    \"trace_off_ns_per_op\": %.1f,\n"
                 "    \"trace_on_ns_per_op\": %.1f,\n"
                 "    \"trace_on_overhead_pct\": %.2f\n"
                 "  },\n"
                 "  \"attribution_hier_allreduce\": {\n"
                 "    \"family\": \"allreduce\",\n"
                 "    \"alg\": \"hierarchical\",\n"
                 "    \"ranks\": %d,\n"
                 "    \"nodes\": 2,\n"
                 "    \"payload_bytes\": %d,\n"
                 "    \"traced_makespan_s\": %.9g,\n"
                 "    \"replayed_makespan_s\": %.9g,\n"
                 "    \"attributed_s\": %.9g,\n"
                 "    \"attributed_ratio\": %.4f,\n"
                 "    \"alpha_inter_s\": %.9g,\n"
                 "    \"beta_inter_s\": %.9g,\n"
                 "    \"o_inter_s\": %.9g,\n"
                 "    \"alpha_intra_s\": %.9g,\n"
                 "    \"beta_intra_s\": %.9g,\n"
                 "    \"o_intra_s\": %.9g,\n"
                 "    \"start_skew_s\": %.9g,\n"
                 "    \"replayed_steps\": %llu\n"
                 "  }\n"
                 "}\n",
                 kRanks, kInner, kReps, off * 1e9, on * 1e9, overhead_pct, kRanks,
                 8192 * static_cast<int>(sizeof(std::uint64_t)), attr.traced_makespan,
                 attr.replayed_makespan, attr.attributed, ratio, attr.alpha_inter,
                 attr.beta_inter, attr.o_inter, attr.alpha_intra, attr.beta_intra,
                 attr.o_intra, attr.start_skew, attr.steps);
    std::fclose(f);

    std::fprintf(stderr,
                 "trace-smoke: off %.0fns/op, on %.0fns/op (%+.2f%%); attribution "
                 "ratio %.4f -> %s\n",
                 off * 1e9, on * 1e9, overhead_pct, ratio, out_path);
    if (rc != MPI_SUCCESS || ratio < 0.95) {
        std::fprintf(stderr, "trace-smoke: FAILED (attribution must cover >= 95%%)\n");
        return 1;
    }
    return 0;
}

// ---------------------------------------------------------------------------
// Zero-copy shm transport smoke (BENCH_shm.json): invoked as `bench_overhead
// --shm-smoke [out.json]` instead of the google-benchmark suite. For the
// hierarchical allgather/allreduce/bcast at 64 KiB-2 MiB payloads on a
// modeled 2 nodes x 8 ranks and 5 nodes x 4 ranks machine, measures the
// virtual makespan of one collective (compute_scale = 0, the metric the
// copy-tier pricing predicts) and the wall time per op of a short
// back-to-back loop, once with the shm transport forced on and once forced
// off (the off column is the PR-5 pipelined p2p composition). Also fits
// gamma_copy through the real rendezvous protocol via XMPI_T_tune_calibrate
// and reports the measured value next to the model default. Exits nonzero
// when the acceptance case (allgather, 2 MiB, 2x8) speeds up by less than
// 1.2x of virtual makespan.
// ---------------------------------------------------------------------------

struct ShmCase {
    char const* family;
    char const* shape;
    int ranks;
    int rpn;
    int count;  // uint64 elements per rank
};

void shm_collective(char const* family, int rank, int p, int count) {
    auto const n = static_cast<std::size_t>(count);
    if (std::strcmp(family, "allgather") == 0) {
        std::vector<std::uint64_t> send(n, static_cast<std::uint64_t>(rank));
        std::vector<std::uint64_t> recv(n * static_cast<std::size_t>(p));
        MPI_Allgather(send.data(), count, MPI_UINT64_T, recv.data(), count, MPI_UINT64_T,
                      MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    } else if (std::strcmp(family, "bcast") == 0) {
        std::vector<std::uint64_t> buf(n, 5);
        MPI_Bcast(buf.data(), count, MPI_UINT64_T, 0, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(buf.data());
    } else {
        std::vector<std::uint64_t> send(n, 1), recv(n);
        MPI_Allreduce(send.data(), recv.data(), count, MPI_UINT64_T, MPI_SUM, MPI_COMM_WORLD);
        benchmark::DoNotOptimize(recv.data());
    }
}

/// Virtual makespan of one collective plus best-of-reps wall time per op,
/// with the hierarchical composition pinned and the transport forced.
void shm_measure(ShmCase const& c, int shm_on, double* vtime, double* wall) {
    constexpr int kWallIters = 8;
    constexpr int kWallReps = 2;
    XMPI_T_alg_set(c.family, "hierarchical");
    XMPI_T_topo_set(c.rpn);
    XMPI_T_shm_set(shm_on);
    xmpi::Config cfg;
    cfg.compute_scale = 0.0;
    // One op per universe for the makespan (back-to-back repetitions would
    // pipeline across instances and amortize the fill latency away).
    auto const result = xmpi::run(
        c.ranks, [&](int rank) { shm_collective(c.family, rank, c.ranks, c.count); }, cfg);
    *vtime = result.max_vtime;
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kWallReps; ++rep) {
        double elapsed = 0;
        xmpi::run(c.ranks, [&](int rank) {
            shm_collective(c.family, rank, c.ranks, c.count);  // warmup
            auto const t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kWallIters; ++i)
                shm_collective(c.family, rank, c.ranks, c.count);
            auto const t1 = std::chrono::steady_clock::now();
            if (rank == 0)
                elapsed = std::chrono::duration<double>(t1 - t0).count() / kWallIters;
        });
        best = std::min(best, elapsed);
    }
    *wall = best;
    XMPI_T_shm_set(-1);
    XMPI_T_topo_set(0);
    XMPI_T_alg_set(c.family, "auto");
}

int shm_smoke(char const* out_path) {
    constexpr double kRequiredSpeedup = 1.2;
    char const* const families[] = {"allgather", "allreduce", "bcast"};
    struct Shape {
        char const* name;
        int ranks;
        int rpn;
    };
    Shape const shapes[] = {{"2x8", 16, 8}, {"5x4", 20, 4}};
    int const counts[] = {8192, 65536, 262144};  // x8 bytes: 64 KiB, 512 KiB, 2 MiB

    struct Row {
        ShmCase c;
        double vtime_shm, wall_shm, vtime_p2p, wall_p2p;
    };
    std::vector<Row> rows;
    double accept_ratio = 0;
    for (char const* family : families) {
        for (Shape const& shape : shapes) {
            for (int count : counts) {
                Row r;
                r.c = ShmCase{family, shape.name, shape.ranks, shape.rpn, count};
                shm_measure(r.c, 1, &r.vtime_shm, &r.wall_shm);
                shm_measure(r.c, 0, &r.vtime_p2p, &r.wall_p2p);
                if (std::strcmp(family, "allgather") == 0 && shape.rpn == 8 &&
                    count == 262144) {
                    accept_ratio = r.vtime_shm > 0 ? r.vtime_p2p / r.vtime_shm : 0;
                }
                rows.push_back(r);
            }
        }
    }

    // Measured copy-tier fit through the real rendezvous protocol on the
    // acceptance shape (after the sweep: the calibrated alpha/beta/o layer
    // must not reprice the measurements above). The fit is discarded before
    // returning so a bundled run leaves the tuner untouched.
    double gamma_default = 0, gamma_fit = 0;
    XMPI_T_tune_get("gamma_copy", &gamma_default);
    XMPI_T_topo_set(8);
    XMPI_T_shm_set(1);
    xmpi::Config cal_cfg;
    cal_cfg.compute_scale = 0.0;  // isolate the copy tier from modeled compute
    xmpi::run(
        16, [](int) { XMPI_T_tune_calibrate(MPI_COMM_WORLD); }, cal_cfg);
    XMPI_T_shm_set(-1);
    XMPI_T_topo_set(0);
    XMPI_T_tune_get("gamma_copy", &gamma_fit);
    XMPI_T_tune_reset();

    std::FILE* const f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "shm-smoke: cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"shm\",\n"
                 "  \"gamma_copy\": {\n"
                 "    \"model_default_s_per_byte\": %.9g,\n"
                 "    \"calibrated_s_per_byte\": %.9g\n"
                 "  },\n"
                 "  \"cases\": [\n",
                 gamma_default, gamma_fit);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        Row const& r = rows[i];
        std::fprintf(
            f,
            "    {\"family\": \"%s\", \"shape\": \"%s\", \"ranks\": %d, "
            "\"ranks_per_node\": %d, \"payload_bytes\": %lld,\n"
            "     \"shm\": {\"vtime_s\": %.9g, \"wall_ns_per_op\": %.1f},\n"
            "     \"p2p\": {\"vtime_s\": %.9g, \"wall_ns_per_op\": %.1f},\n"
            "     \"vtime_speedup\": %.3f}%s\n",
            r.c.family, r.c.shape, r.c.ranks, r.c.rpn,
            static_cast<long long>(r.c.count) * static_cast<long long>(sizeof(std::uint64_t)),
            r.vtime_shm, r.wall_shm * 1e9, r.vtime_p2p, r.wall_p2p * 1e9,
            r.vtime_shm > 0 ? r.vtime_p2p / r.vtime_shm : 0.0,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"acceptance\": {\n"
                 "    \"case\": \"hierarchical allgather, 2 MiB, 2 nodes x 8 ranks\",\n"
                 "    \"vtime_speedup\": %.3f,\n"
                 "    \"required\": %.2f,\n"
                 "    \"pass\": %s\n"
                 "  }\n"
                 "}\n",
                 accept_ratio, kRequiredSpeedup,
                 accept_ratio >= kRequiredSpeedup ? "true" : "false");
    std::fclose(f);

    std::fprintf(stderr,
                 "shm-smoke: gamma_copy fit %.3g s/B (default %.3g); acceptance "
                 "allgather 2MiB 2x8 speedup %.3fx (need %.2fx) -> %s\n",
                 gamma_fit, gamma_default, accept_ratio, kRequiredSpeedup, out_path);
    if (accept_ratio < kRequiredSpeedup) {
        std::fprintf(stderr, "shm-smoke: FAILED (zero-copy must beat p2p by >= %.2fx)\n",
                     kRequiredSpeedup);
        return 1;
    }
    return 0;
}

// ---------------------------------------------------------------------------
// Asynchronous progress smoke (BENCH_progress.json): invoked as
// `bench_overhead --progress-smoke [out.json]` instead of the
// google-benchmark suite. Two legs:
//
//  1. Compute overlap (wall time, not vtime): a persistent 1 MiB allreduce
//     started before a calibrated busy-compute phase and waited after it.
//     With the engine off the wait drives every schedule step, so wall time
//     is compute + communication; with it on, the progress threads complete
//     the communication underneath the compute and the wait degenerates to
//     an acquire load. The progress-on leg also reads the
//     progress.app_progress_calls pvar per rank — the overlap claim is only
//     honest if it completed with ZERO app-thread progress calls.
//
//  2. Small-message interference (8 B - 4 KiB blocking allreduce): these
//     schedules sit below the XMPI_PROGRESS_MIN_BYTES offload gate, so the
//     engine being armed must not cost the synchronous path more than 10%.
//
// Exits nonzero when the overlap win is < 1.3x, any app-thread progress
// call leaks into the on leg, or interference exceeds 10% at any size.
// ---------------------------------------------------------------------------

/// Occupies the calling rank for `us` of wall time without polling MPI (the
/// overlap "compute"): work done away from the library — an accelerator
/// kernel, I/O, or CPU work on other cores. Sleeping rather than spinning
/// keeps the measurement meaningful on single-core CI hosts, where a spin
/// loop would steal the very core the progress engine needs; the conclusion
/// is the same either way — with the engine off, nothing progresses during
/// this window, with it on, the communication completes underneath it.
void compute_phase_us(double us) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(static_cast<long long>(us * 1e3)));
}

/// One overlap repetition: wall seconds per start/compute/wait round on rank
/// 0's clock, and (progress-on leg) the worst per-rank app-thread progress
/// call count observed after the pvar reset.
double overlap_rep(int count, double compute_us, int rounds, unsigned long long* max_app_calls) {
    double elapsed = 0;
    xmpi::run(kRanks, [&](int rank) {
        std::vector<std::uint64_t> send(static_cast<std::size_t>(count), rank + 1u);
        std::vector<std::uint64_t> recv(send.size(), 0);
        MPI_Request req;
        MPI_Allreduce_init(send.data(), recv.data(), count, MPI_UINT64_T, MPI_SUM,
                           MPI_COMM_WORLD, MPI_INFO_NULL, &req);
        MPI_Start(&req);
        MPI_Wait(&req, MPI_STATUS_IGNORE);  // warmup round
        int app_calls_idx = -1;
        if (max_app_calls != nullptr) {
            int num = 0;
            XMPI_T_pvar_num(&num);
            char name[64];
            for (int i = 0; i < num; ++i) {
                if (XMPI_T_pvar_name(i, name, sizeof(name), nullptr) == MPI_SUCCESS &&
                    std::strcmp(name, "progress.app_progress_calls") == 0) {
                    app_calls_idx = i;
                    break;
                }
            }
            if (app_calls_idx >= 0) XMPI_T_pvar_reset(app_calls_idx);
        }
        auto const t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < rounds; ++r) {
            MPI_Start(&req);
            compute_phase_us(compute_us);
            MPI_Wait(&req, MPI_STATUS_IGNORE);
            benchmark::DoNotOptimize(recv.data());
        }
        auto const t1 = std::chrono::steady_clock::now();
        if (max_app_calls != nullptr && app_calls_idx >= 0) {
            unsigned long long calls = 0;
            int n = 1;
            XMPI_T_pvar_read(app_calls_idx, &calls, &n);
            static std::mutex m;
            std::lock_guard<std::mutex> lock(m);
            *max_app_calls = std::max(*max_app_calls, calls);
        }
        MPI_Request_free(&req);
        if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / rounds;
    });
    return elapsed;
}

double overlap_best(int reps, int count, double compute_us, int rounds,
                    unsigned long long* max_app_calls) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i)
        best = std::min(best, overlap_rep(count, compute_us, rounds, max_app_calls));
    return best;
}

/// Wall ns per op of a short blocking-allreduce loop at `count` elements.
double small_allreduce_best(int reps, int count) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        double elapsed = 0;
        xmpi::run(kRanks, [&](int rank) {
            std::vector<std::uint64_t> send(static_cast<std::size_t>(count), 3);
            std::vector<std::uint64_t> recv(send.size(), 0);
            MPI_Allreduce(send.data(), recv.data(), count, MPI_UINT64_T, MPI_SUM,
                          MPI_COMM_WORLD);  // warmup
            auto const t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kInner; ++i) {
                MPI_Allreduce(send.data(), recv.data(), count, MPI_UINT64_T, MPI_SUM,
                              MPI_COMM_WORLD);
                benchmark::DoNotOptimize(recv.data());
            }
            auto const t1 = std::chrono::steady_clock::now();
            if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / kInner;
        });
        best = std::min(best, elapsed);
    }
    return best;
}

int progress_smoke(char const* out_path) {
    constexpr int kOverlapCount = 262144;  // 2 MiB of uint64
    constexpr int kOverlapRounds = 8;
    constexpr int kReps = 7;
    constexpr int kSmallReps = 25;
    constexpr double kRequiredWin = 1.3;
    constexpr double kMaxInterferencePct = 10.0;

    setenv("XMPI_PROGRESS_THREADS", "2", 1);
    XMPI_T_alg_env_refresh();

    // Calibrate the compute phase to ~1.25x the communication-only wall
    // time: long enough that the engine can finish the tape underneath it,
    // short enough that the sequential (progress-off) baseline pays the
    // full communication on top — the regime where overlap pays most.
    XMPI_T_progress_set(0);
    double const comm_only = overlap_best(kReps, kOverlapCount, 0.0, kOverlapRounds, nullptr);
    double const compute_us = 1.25 * comm_only * 1e6;

    double const off = overlap_best(kReps, kOverlapCount, compute_us, kOverlapRounds, nullptr);
    XMPI_T_progress_set(1);
    unsigned long long app_calls = 0;
    double const on = overlap_best(kReps, kOverlapCount, compute_us, kOverlapRounds, &app_calls);
    double const win = on > 0 ? off / on : 0.0;

    // Interference curve: 8 B - 4 KiB stays under the default offload gate.
    struct Point {
        int count;
        double off_ns, on_ns, delta_pct;
    };
    std::vector<Point> curve;
    double worst_delta = 0.0;
    for (int count : {1, 8, 64, 512}) {
        XMPI_T_progress_set(0);
        double const p_off = small_allreduce_best(kSmallReps, count);
        XMPI_T_progress_set(1);
        double const p_on = small_allreduce_best(kSmallReps, count);
        double const delta = p_off > 0 ? (p_on - p_off) / p_off * 100.0 : 0.0;
        curve.push_back({count, p_off * 1e9, p_on * 1e9, delta});
        worst_delta = std::max(worst_delta, delta);
    }
    XMPI_T_progress_set(-1);
    unsetenv("XMPI_PROGRESS_THREADS");
    XMPI_T_alg_env_refresh();

    bool const pass =
        win >= kRequiredWin && app_calls == 0 && worst_delta <= kMaxInterferencePct;

    std::FILE* const f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "progress-smoke: cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"progress\",\n"
                 "  \"overlap_persistent_allreduce\": {\n"
                 "    \"ranks\": %d,\n"
                 "    \"payload_bytes\": %lld,\n"
                 "    \"progress_threads\": 2,\n"
                 "    \"rounds_per_rep\": %d,\n"
                 "    \"repetitions\": %d,\n"
                 "    \"comm_only_us_per_op\": %.2f,\n"
                 "    \"compute_us_per_op\": %.2f,\n"
                 "    \"progress_off_us_per_op\": %.2f,\n"
                 "    \"progress_on_us_per_op\": %.2f,\n"
                 "    \"wall_time_win\": %.3f,\n"
                 "    \"app_progress_calls_with_engine\": %llu\n"
                 "  },\n"
                 "  \"small_message_interference\": [\n",
                 kRanks,
                 static_cast<long long>(kOverlapCount) *
                     static_cast<long long>(sizeof(std::uint64_t)),
                 kOverlapRounds, kReps, comm_only * 1e6, compute_us, off * 1e6, on * 1e6, win,
                 app_calls);
    for (std::size_t i = 0; i < curve.size(); ++i) {
        Point const& p = curve[i];
        std::fprintf(f,
                     "    {\"bytes\": %lld, \"progress_off_ns_per_op\": %.1f, "
                     "\"progress_on_ns_per_op\": %.1f, \"delta_pct\": %.2f}%s\n",
                     static_cast<long long>(p.count) * static_cast<long long>(sizeof(std::uint64_t)),
                     p.off_ns, p.on_ns, p.delta_pct, i + 1 < curve.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"acceptance\": {\n"
                 "    \"required_overlap_win\": %.2f,\n"
                 "    \"max_interference_pct\": %.1f,\n"
                 "    \"worst_interference_pct\": %.2f,\n"
                 "    \"pass\": %s\n"
                 "  }\n"
                 "}\n",
                 kRequiredWin, kMaxInterferencePct, worst_delta, pass ? "true" : "false");
    std::fclose(f);

    std::fprintf(stderr,
                 "progress-smoke: overlap off %.1fus on %.1fus (win %.2fx, need %.2fx), "
                 "app progress calls %llu; worst interference %+.2f%% -> %s\n",
                 off * 1e6, on * 1e6, win, kRequiredWin, app_calls, worst_delta, out_path);
    if (!pass) {
        std::fprintf(stderr, "progress-smoke: FAILED\n");
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--trace-smoke") {
            return trace_smoke(i + 1 < argc ? argv[i + 1] : "BENCH_trace.json");
        }
        if (std::string(argv[i]) == "--shm-smoke") {
            return shm_smoke(i + 1 < argc ? argv[i + 1] : "BENCH_shm.json");
        }
        if (std::string(argv[i]) == "--progress-smoke") {
            return progress_smoke(i + 1 < argc ? argv[i + 1] : "BENCH_progress.json");
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
