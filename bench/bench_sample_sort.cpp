/// @file bench_sample_sort.cpp
/// @brief Regenerates Fig. 8: weak-scaling sample sort across the five
/// binding implementations. Reports the modeled parallel time (virtual time
/// under the cost model; see DESIGN.md) for executed scales and the
/// analytic-model series up to the paper's largest scale.
///
/// Expected shape (paper Fig. 8): MPI, Boost.MPI, RWTH-MPI and KaMPIng lie
/// on top of each other — the bindings add no overhead — while the
/// Boost-style all_to_all pays a serialization penalty.
#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "apps/sample_sort/sort_boost.hpp"
#include "apps/sample_sort/sort_kamping.hpp"
#include "apps/sample_sort/sort_mpi.hpp"
#include "apps/sample_sort/sort_mpl.hpp"
#include "apps/sample_sort/sort_rwth.hpp"
#include "model/analytic.hpp"
#include "xmpi/xmpi.hpp"

namespace {

using T = std::uint64_t;
using SortFn = void (*)(std::vector<T>&, MPI_Comm);

double measure(SortFn fn, int p, std::size_t n_per_rank) {
    double modeled = 0;
    auto result = xmpi::run(p, [&](int rank) {
        std::mt19937_64 gen(9000 + static_cast<unsigned>(rank));
        std::vector<T> data(n_per_rank);
        for (auto& v : data) v = gen();
        double const t0 = xmpi::vtime_now();
        fn(data, MPI_COMM_WORLD);
        double const t1 = xmpi::vtime_now();
        if (!std::is_sorted(data.begin(), data.end())) std::abort();
        if (rank == 0) modeled = t1 - t0;
    });
    // The makespan is the max over ranks; rank 0's window is representative
    // because sample sort is bulk-synchronous. Use the global max as bound.
    (void)result;
    return modeled;
}

}  // namespace

int main() {
    std::size_t const n = 50000;  // elements per rank (weak scaling)
    std::printf("=== Fig. 8: sample sort weak scaling (modeled time, %zu uint64/rank) ===\n", n);
    std::printf("%6s %12s %12s %12s %12s %12s\n", "p", "mpi[ms]", "boost[ms]", "mpl[ms]",
                "rwth[ms]", "kamping[ms]");
    for (int p : {2, 4, 8, 16, 32}) {
        double const t_mpi = measure(&apps::mpi::sort<T>, p, n);
        double const t_boost = measure(&apps::boost_impl::sort<T>, p, n);
        double const t_mpl = measure(&apps::mpl_impl::sort<T>, p, n);
        double const t_rwth = measure(&apps::rwth_impl::sort<T>, p, n);
        double const t_kamping = measure(&apps::kamping_impl::sort<T>, p, n);
        std::printf("%6d %12.3f %12.3f %12.3f %12.3f %12.3f\n", p, t_mpi * 1e3, t_boost * 1e3,
                    t_mpl * 1e3, t_rwth * 1e3, t_kamping * 1e3);
    }

    std::printf("\n--- analytic extrapolation to the paper's scales (same workload) ---\n");
    std::printf("%6s %16s\n", "p", "model[ms]");
    bench::model::Machine const machine;
    for (int p = 64; p <= (1 << 13); p *= 4) {
        double const t = bench::model::sample_sort(machine, p, static_cast<double>(n), sizeof(T));
        std::printf("%6d %16.3f\n", p, t * 1e3);
    }
    std::printf(
        "\nShape check: all bindings within noise of plain MPI (near zero overhead);\n"
        "the Boost-style exchange pays its serialization penalty.\n");
    return 0;
}
