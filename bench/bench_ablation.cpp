/// @file bench_ablation.cpp
/// @brief Ablations of the design choices DESIGN.md calls out:
///  1. grid all-to-all's latency/volume trade (paper §V-A): message count
///     drops from O(p) to O(√p) per rank while communicated bytes roughly
///     double — measured via the substrate's exact traffic counters;
///  2. the cost of computing defaults (paper §III-A): allgatherv with
///     library-inferred counts vs. caller-provided counts, in messages and
///     modeled time — inference costs exactly one extra small allgather;
///  3. eager default-computation avoidance: providing recv_counts to
///     alltoallv removes the internal count exchange entirely.
#include <cstdio>
#include <vector>

#include "kamping/kamping.hpp"
#include "kamping/plugins/grid_alltoall.hpp"
#include "xmpi/xmpi.hpp"

namespace {

using GridComm = kamping::CommunicatorWith<kamping::plugin::GridAlltoall>;

struct Traffic {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double vtime = 0;
};

Traffic grid_traffic(int p, int payload, bool use_grid, int reps) {
    Traffic out;
    auto result = xmpi::run(p, [&, p](int rank) {
        GridComm comm;
        std::vector<std::uint64_t> data(static_cast<std::size_t>(p) *
                                            static_cast<std::size_t>(payload),
                                        static_cast<std::uint64_t>(rank));
        std::vector<int> counts(static_cast<std::size_t>(p), payload);
        if (use_grid) comm.alltoallv_grid(data, counts);  // setup outside measurement
        auto const before = xmpi::counters_now();
        double const t0 = xmpi::vtime_now();
        for (int i = 0; i < reps; ++i) {
            if (use_grid) {
                comm.alltoallv_grid(data, counts);
            } else {
                comm.alltoallv(kamping::send_buf(data), kamping::send_counts(counts));
            }
        }
        double const t1 = xmpi::vtime_now();
        auto const after = xmpi::counters_now();
        if (rank == 0) {
            out.messages = (after.p2p_messages + after.coll_messages - before.p2p_messages -
                            before.coll_messages) /
                           static_cast<unsigned>(reps);
            out.bytes = (after.p2p_bytes + after.coll_bytes - before.p2p_bytes -
                         before.coll_bytes) /
                        static_cast<unsigned>(reps);
            out.vtime = (t1 - t0) / reps;
        }
    });
    (void)result;
    return out;
}

}  // namespace

int main() {
    std::printf("=== Ablation 1: grid vs dense all-to-all — latency/volume trade (rank 0's "
                "traffic per exchange) ===\n");
    std::printf("%4s %14s %12s %14s %12s %12s %12s\n", "p", "dense msgs", "grid msgs",
                "dense bytes", "grid bytes", "dense[us]", "grid[us]");
    for (int p : {4, 16, 36, 64}) {
        auto const dense = grid_traffic(p, 4, false, 3);
        auto const grid = grid_traffic(p, 4, true, 3);
        std::printf("%4d %14llu %12llu %14llu %12llu %12.1f %12.1f\n", p,
                    static_cast<unsigned long long>(dense.messages),
                    static_cast<unsigned long long>(grid.messages),
                    static_cast<unsigned long long>(dense.bytes),
                    static_cast<unsigned long long>(grid.bytes), dense.vtime * 1e6,
                    grid.vtime * 1e6);
    }
    std::printf("Expected: grid messages ~ 2*sqrt(p) vs dense ~ 2*(p-1); grid bytes ~ 2x dense;\n"
                "grid modeled time wins once the alpha term dominates (large p, small payload).\n");

    std::printf("\n=== Ablation 2: cost of computing defaults (allgatherv) ===\n");
    std::printf("%4s %18s %18s %16s %16s\n", "p", "given: msgs/rank", "inferred: msgs/rank",
                "given[us]", "inferred[us]");
    for (int p : {4, 16, 64}) {
        Traffic given, inferred;
        xmpi::run(p, [&, p](int rank) {
            kamping::Communicator comm;
            using namespace kamping;
            std::vector<long> v(16, rank);
            std::vector<int> counts(static_cast<std::size_t>(p), 16);
            auto const b0 = xmpi::counters_now();
            double t0 = xmpi::vtime_now();
            for (int i = 0; i < 3; ++i) auto r = comm.allgatherv(send_buf(v), recv_counts(counts));
            double t1 = xmpi::vtime_now();
            auto const b1 = xmpi::counters_now();
            for (int i = 0; i < 3; ++i) auto r = comm.allgatherv(send_buf(v));
            double t2 = xmpi::vtime_now();
            auto const b2 = xmpi::counters_now();
            if (rank == 0) {
                given.messages = (b1.coll_messages - b0.coll_messages) / 3;
                given.vtime = (t1 - t0) / 3;
                inferred.messages = (b2.coll_messages - b1.coll_messages) / 3;
                inferred.vtime = (t2 - t1) / 3;
            }
        });
        std::printf("%4d %18llu %18llu %16.1f %16.1f\n", p,
                    static_cast<unsigned long long>(given.messages),
                    static_cast<unsigned long long>(inferred.messages), given.vtime * 1e6,
                    inferred.vtime * 1e6);
    }
    std::printf("Expected: inference adds exactly the messages of one small allgather (the count\n"
                "exchange) — the same cost the hand-rolled Fig. 2 code pays; providing counts\n"
                "removes it entirely (paper §III-A: no hidden communication when avoidable).\n");
    return 0;
}
