/// @file bench_raxml_proxy.cpp
/// @brief Regenerates the §IV-C RAxML-NG experiment: replacing the
/// hand-written parallelization abstraction layer (custom BinaryStream
/// serialization + raw broadcasts) with KaMPIng's one-line serialized
/// broadcast must not cost measurable performance at the application's call
/// rate (~700 MPI calls per second in the paper).
#include <cstdio>
#include <random>
#include <vector>

#include "apps/raxml_lite/raxml_lite.hpp"
#include "xmpi/xmpi.hpp"

namespace {

struct Outcome {
    double loglh = 0;
    double wall = 0;
    double modeled = 0;
    std::uint64_t calls = 0;
};

template <typename Context>
Outcome run(int p, int iterations, std::size_t sites_per_rank) {
    Outcome out;
    auto result = xmpi::run(p, [&](int rank) {
        using namespace apps::raxml_lite;
        std::mt19937_64 gen(911 + static_cast<unsigned>(rank));
        std::vector<std::uint64_t> sites(sites_per_rank);
        for (auto& s : sites) s = gen();
        Context ctx(MPI_COMM_WORLD);
        double const t0 = xmpi::vtime_now();
        auto const [lh, calls] = run_search(ctx, Model{}, sites, iterations);
        double const t1 = xmpi::vtime_now();
        if (rank == 0) {
            out.loglh = lh;
            out.modeled = t1 - t0;
            out.calls = calls;
        }
    });
    out.wall = result.wall_time;
    return out;
}

}  // namespace

int main() {
    int const p = 8;
    int const iterations = 300;
    std::size_t const sites = 2000;
    std::printf("=== §IV-C: RAxML-NG abstraction layer vs KaMPIng (p=%d, %d iterations) ===\n", p,
                iterations);

    auto const before = run<apps::raxml_lite::custom::ParallelContext>(p, iterations, sites);
    auto const after = run<apps::raxml_lite::kamping_ctx::ParallelContext>(p, iterations, sites);

    std::printf("%-22s %14s %14s %14s %10s\n", "layer", "loglh", "modeled[ms]", "wall[ms]",
                "calls/s");
    std::printf("%-22s %14.4f %14.2f %14.2f %10.0f\n", "custom (Before)", before.loglh,
                before.modeled * 1e3, before.wall * 1e3,
                static_cast<double>(before.calls) / before.modeled);
    std::printf("%-22s %14.4f %14.2f %14.2f %10.0f\n", "kamping (After)", after.loglh,
                after.modeled * 1e3, after.wall * 1e3,
                static_cast<double>(after.calls) / after.modeled);

    double const ratio = after.modeled / before.modeled;
    std::printf("\nmodeled-time ratio kamping/custom = %.3f (paper: within one standard "
                "deviation)\nresults identical: %s\n",
                ratio, before.loglh == after.loglh ? "yes" : "NO");
    return 0;
}
