/// @file bench_repro_reduce.cpp
/// @brief Regenerates the §V-C / Fig. 13 experiment: the reproducible reduce
/// plugin (a) produces bitwise-identical results for every processor count,
/// (b) is faster than the trivial reproducible method (gather + local
/// reduction in fixed order + broadcast), while (c) a plain MPI_Allreduce is
/// fastest but *not* reproducible.
#include <bit>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "kamping/kamping.hpp"
#include "kamping/plugins/reproducible_reduce.hpp"
#include "xmpi/xmpi.hpp"

namespace {

using ReproComm = kamping::CommunicatorWith<kamping::plugin::ReproducibleReduce>;

std::vector<double> adversarial(std::size_t n) {
    std::mt19937_64 gen(31337);
    std::uniform_real_distribution<double> mag(-28, 28);
    std::vector<double> v(n);
    for (auto& x : v) x = std::ldexp(1.0 + mag(gen) / 57.0, static_cast<int>(mag(gen)));
    return v;
}

struct Outcome {
    double repro = 0, naive = 0, plain = 0;
    double t_repro = 0, t_naive = 0, t_plain = 0;
};

Outcome run_all(std::vector<double> const& global, int p, int reps) {
    Outcome out;
    xmpi::run(p, [&, p](int rank) {
        using namespace kamping;
        ReproComm comm;
        std::size_t const chunk = (global.size() + static_cast<std::size_t>(p) - 1) /
                                  static_cast<std::size_t>(p);
        std::size_t const b = std::min(global.size(), chunk * static_cast<std::size_t>(rank));
        std::size_t const e = std::min(global.size(), b + chunk);
        std::vector<double> local(global.begin() + static_cast<std::ptrdiff_t>(b),
                                  global.begin() + static_cast<std::ptrdiff_t>(e));

        // (a) tree-based reproducible reduce
        double t0 = xmpi::vtime_now();
        double repro = 0;
        for (int i = 0; i < reps; ++i) repro = comm.reproducible_reduce(local);
        double t1 = xmpi::vtime_now();
        double const t_repro = (t1 - t0) / reps;

        // (b) trivial reproducible method: gatherv + fixed-order local sum +
        // bcast
        t0 = xmpi::vtime_now();
        double naive = 0;
        for (int i = 0; i < reps; ++i) {
            auto all = comm.gatherv(send_buf(local), root(0));
            if (rank == 0) {
                naive = 0;
                for (double x : all) naive += x;
            }
            naive = comm.bcast_single(send_recv_buf(naive), root(0));
        }
        t1 = xmpi::vtime_now();
        double const t_naive = (t1 - t0) / reps;

        // (c) plain (non-reproducible) allreduce
        t0 = xmpi::vtime_now();
        double plain = 0;
        for (int i = 0; i < reps; ++i) {
            double partial = 0;
            for (double x : local) partial += x;
            plain = comm.allreduce_single(send_buf(partial), op(std::plus<>{}));
        }
        t1 = xmpi::vtime_now();
        double const t_plain = (t1 - t0) / reps;

        if (rank == 0) {
            out = Outcome{repro, naive, plain, t_repro, t_naive, t_plain};
        }
    });
    return out;
}

}  // namespace

int main() {
    std::size_t const n = 200000;
    auto const input = adversarial(n);
    std::printf("=== §V-C / Fig. 13: reproducible reduce (%zu doubles) ===\n", n);
    std::printf("%4s %14s %14s %14s   %s\n", "p", "repro[us]", "gather+bc[us]", "allreduce[us]",
                "repro bit-identical to p=1?");
    std::uint64_t repro1 = 0;
    bool all_identical = true;
    for (int p : {1, 2, 4, 8, 16}) {
        auto const o = run_all(input, p, 3);
        if (p == 1) repro1 = std::bit_cast<std::uint64_t>(o.repro);
        bool const same = std::bit_cast<std::uint64_t>(o.repro) == repro1;
        all_identical = all_identical && same;
        std::printf("%4d %14.1f %14.1f %14.1f   %s\n", p, o.t_repro * 1e6, o.t_naive * 1e6,
                    o.t_plain * 1e6, same ? "yes" : "NO");
    }
    std::printf("\nShape check: %s; tree-reduce beats gather+local+bcast at p >= 4.\n",
                all_identical ? "bit-identical across all p" : "REPRODUCIBILITY VIOLATED");
    return 0;
}
