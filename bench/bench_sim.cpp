/// @file bench_sim.cpp
/// @brief Virtual-time simulation bench. Plain executable (no
/// google-benchmark dependency) with three modes:
///
///   bench_sim                 full sweep; prints BENCH_sim.json to stdout
///   bench_sim --smoke P       CI smoke: 5 families x 3 node shapes at P
///                             simulated ranks, well-formedness + sanity
///                             ratio checks against the analytic model;
///                             exits nonzero on any failure
///   bench_sim --scale-check   the acceptance gate: auto-selected allreduce
///                             at p = 10^6 simulated ranks must complete
///                             (build + event loop) in under 60 s
///
/// The full sweep records, per algorithm, the model-vs-simulator relative
/// error. Since the closed forms learned sender-overhead pipelining (star
/// flats) and the exact ragged-round recursion (non-pow2 binomial), every
/// single-tier tape is expected to reproduce its formula — the remaining
/// deliberate divergences are the pipelined bcast ring's fill/drain and the
/// hierarchical compositions' phase overlap. Those rows are recorded, not
/// hidden — and each is additionally replayed against a fitted scalar
/// correction (the sim-side analogue of the tune subsystem's calibrated
/// overlay): the tape is ground truth, the formulas are the approximation.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/model/analytic.hpp"
#include "src/xmpi/sim/sim.hpp"
#include "src/xmpi/topo/topo.hpp"
#include "xmpi/xmpi.hpp"

namespace sim = xmpi::detail::sim;
namespace alg = xmpi::detail::alg;
namespace topo = xmpi::detail::topo;
namespace model = bench::model;

using sim::Family;

namespace {

Family const kAllFamilies[] = {Family::bcast, Family::reduce, Family::allgather,
                               Family::allreduce, Family::alltoall};

model::Machine machine_of(xmpi::Config const& cfg) {
    model::Machine m;
    m.alpha = cfg.alpha;
    m.beta = cfg.beta;
    m.o = cfg.o;
    return m;
}

model::TwoTier two_tier_of(xmpi::Config const& cfg) {
    model::TwoTier t;
    t.inter = machine_of(cfg);
    t.intra.alpha = cfg.alpha_intra;
    t.intra.beta = cfg.beta_intra;
    t.intra.o = cfg.o_intra;
    return t;
}

model::NodeShape shape_of(std::vector<int> const& node_map, int p) {
    model::NodeShape s;
    if (node_map.empty()) {
        s.nodes = p;
        s.max_ppn = s.min_ppn = 1;
        return s;
    }
    int nodes = 0;
    for (int n : node_map) nodes = std::max(nodes, n + 1);
    std::vector<int> sizes(static_cast<std::size_t>(nodes), 0);
    for (int n : node_map) ++sizes[static_cast<std::size_t>(n)];
    s.nodes = nodes;
    s.max_ppn = *std::max_element(sizes.begin(), sizes.end());
    s.min_ppn = *std::min_element(sizes.begin(), sizes.end());
    return s;
}

/// Closed-form cost of flat algorithm `name` of `family`; -1 if unpriced.
double flat_model_cost(Family family, std::string const& name, model::Machine const& m, double p,
                       double bytes) {
    switch (family) {
        case Family::bcast:
            if (name == "flat") return model::bcast_flat(m, p, bytes);
            if (name == "binomial") return model::bcast_binomial(m, p, bytes);
            if (name == "ring") return model::bcast_ring_pipelined(m, p, bytes);
            break;
        case Family::reduce:
            if (name == "flat") return model::reduce_flat(m, p, bytes);
            if (name == "binomial") return model::reduce_binomial(m, p, bytes);
            break;
        case Family::allgather:
            if (name == "flat") return model::allgather_flat(m, p, bytes);
            if (name == "rdoubling") return model::allgather_rdoubling(m, p, bytes);
            if (name == "ring") return model::allgather_ring(m, p, bytes);
            break;
        case Family::allreduce:
            if (name == "flat") return model::allreduce_flat(m, p, bytes);
            if (name == "binomial") return model::allreduce_binomial(m, p, bytes);
            if (name == "rdoubling") return model::allreduce_rdoubling(m, p, bytes);
            if (name == "rabenseifner") return model::allreduce_rabenseifner(m, p, bytes);
            if (name == "ring") return model::allreduce_ring(m, p, bytes);
            break;
        case Family::alltoall:
            if (name == "flat") return model::alltoall_flat(m, p, bytes);
            if (name == "bruck") return model::alltoall_bruck(m, p, bytes);
            break;
    }
    return -1.0;
}

double hier_model_cost(Family family, model::TwoTier const& t, model::NodeShape const& s,
                       double p, double bytes) {
    switch (family) {
        case Family::bcast: return model::bcast_hier(t, s, p, bytes);
        case Family::reduce: return model::reduce_hier(t, s, p, bytes);
        case Family::allgather: return model::allgather_hier(t, s, p, bytes);
        case Family::allreduce: return model::allreduce_hier(t, s, p, bytes, true, true);
        case Family::alltoall: return model::alltoall_hier(t, s, p, bytes);
    }
    return -1.0;
}

/// On pow2 flat worlds these tapes reproduce the closed form exactly. The
/// star flats match since the formulas model sender-overhead pipelining
/// ((p-1)*o + alpha + beta*B instead of serializing p-1 full messages);
/// only the pipelined bcast ring still diverges by design (the formula
/// folds fill/drain into uniform rounds, the tape pays the real
/// store-and-forward).
bool expected_to_match(Family family, std::string const& name) {
    if (name == "ring") return family != Family::bcast;  // bcast ring is pipelined
    return true;
}

double now_seconds() {
    auto const t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(t).count();
}

sim::Result run_sim(Family family, int p, std::vector<int> node_map, int count, int elem_size,
                    int force_alg, std::uint64_t max_steps = 60'000'000) {
    sim::World w;
    w.size = p;
    w.node_map = std::move(node_map);
    sim::CollSpec spec;
    spec.family = family;
    spec.count = count;
    spec.elem_size = elem_size;
    spec.force_alg = force_alg;
    sim::Options opt;
    opt.max_tape_steps = max_steps;
    return sim::simulate(w, spec, opt);
}

/// Ragged shape: nodes alternate between 3/4 and 5/4 of `mean_ppn` ranks.
std::vector<int> ragged_map(int p, int mean_ppn) {
    int const lo = mean_ppn * 3 / 4;
    int const hi = mean_ppn + (mean_ppn - lo);
    std::vector<int> sizes;
    int placed = 0;
    while (placed < p) {
        int next = (sizes.size() % 2 == 0) ? lo : hi;
        if (next > p - placed) next = p - placed;
        sizes.push_back(next);
        placed += next;
    }
    return topo::node_map_from_sizes(sizes);
}

// --- JSON helpers (everything we emit is numbers and clean identifiers) ----

struct Json {
    std::string out;
    bool first_in_scope = true;
    void raw(char const* s) { out += s; }
    void comma() {
        if (!first_in_scope) out += ",";
        first_in_scope = false;
    }
    void open(char c) {
        out += c;
        first_in_scope = true;
    }
    void close(char c) {
        out += c;
        first_in_scope = false;
    }
    void key(char const* k) {
        comma();
        out += '"';
        out += k;
        out += "\":";
    }
    void str(char const* k, std::string const& v) {
        key(k);
        out += '"';
        for (char c : v) {
            if (c == '"' || c == '\\') out += '\\';
            out += c;
        }
        out += '"';
    }
    void num(char const* k, double v) {
        key(k);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.9g", v);
        out += buf;
    }
    void integer(char const* k, long long v) {
        key(k);
        out += std::to_string(v);
    }
    void boolean(char const* k, bool v) {
        key(k);
        out += v ? "true" : "false";
    }
};

// --- modes -----------------------------------------------------------------

int scale_check() {
    std::fprintf(stderr, "scale-check: auto-selected allreduce at p = 1000000...\n");
    double const t0 = now_seconds();
    sim::Result const res = run_sim(Family::allreduce, 1'000'000, {}, 1024, 4, -1);
    double const elapsed = now_seconds() - t0;
    if (res.error != MPI_SUCCESS) {
        std::fprintf(stderr, "scale-check FAILED: %s\n", res.detail.c_str());
        return 1;
    }
    double const eps = static_cast<double>(res.events) / (res.run_seconds > 0 ? res.run_seconds : 1);
    std::fprintf(stderr,
                 "scale-check: alg=%s makespan=%.6gs tape_steps=%llu events=%llu "
                 "build=%.2fs run=%.2fs total=%.2fs (%.3g events/s)\n",
                 res.alg_name, res.makespan, static_cast<unsigned long long>(res.tape_steps),
                 static_cast<unsigned long long>(res.events), res.build_seconds, res.run_seconds,
                 elapsed, eps);
    if (elapsed >= 60.0) {
        std::fprintf(stderr, "scale-check FAILED: %.2fs >= 60s budget\n", elapsed);
        return 1;
    }
    std::fprintf(stderr, "scale-check OK\n");
    return 0;
}

int smoke(int p) {
    if (p < 1024) {
        std::fprintf(stderr, "smoke: p must be >= 1024 (got %d)\n", p);
        return 1;
    }
    struct Shape {
        char const* name;
        std::vector<int> node_map;
    };
    // Mean 512 ranks/node keeps the node count at p/512 <= 256 for the CI
    // sweep sizes, within the hierarchical inter-phase tag window.
    Shape const shapes[] = {
        {"flat", {}},
        {"block-512", topo::block_map(p, 512)},
        {"ragged-384-640", ragged_map(p, 512)},
    };
    xmpi::Config const cfg;
    model::Machine const m = machine_of(cfg);
    model::TwoTier const t = two_tier_of(cfg);
    int failures = 0;
    std::fprintf(stderr, "smoke: p=%d\n%-16s %-10s %-12s %12s %12s %8s\n", p, "shape", "family",
                 "selected", "makespan[s]", "model[s]", "ratio");
    for (auto const& shape : shapes) {
        model::NodeShape const ns = shape_of(shape.node_map, p);
        for (Family family : kAllFamilies) {
            // Sizes chosen so the auto-selected tapes stay logarithmic per
            // rank: 4 KiB vectors for the rooted/allreduce families, 8 B
            // blocks for the quadratic-volume families.
            bool const per_block = family == Family::allgather || family == Family::alltoall;
            int const count = per_block ? 8 : 1024;
            int const elem = per_block ? 1 : 4;
            sim::Result const res = run_sim(family, p, shape.node_map, count, elem, -1);
            if (res.error != MPI_SUCCESS) {
                std::fprintf(stderr, "FAIL %s/%s: %s\n", shape.name,
                             alg::family_name(family), res.detail.c_str());
                ++failures;
                continue;
            }
            double const bytes = static_cast<double>(count) * elem;
            double model_ref = flat_model_cost(family, res.alg_name, m, p, bytes);
            if (model_ref < 0) model_ref = hier_model_cost(family, t, ns, p, bytes);
            double const ratio = model_ref > 0 ? res.makespan / model_ref : -1;
            bool ok = res.makespan > 0 && std::isfinite(res.makespan) && res.events > 0;
            // Sanity net, not the 5% gate: compositions legitimately diverge
            // from the closed forms, but not by an order of magnitude.
            if (ratio > 0 && (ratio < 1.0 / 16 || ratio > 16)) ok = false;
            std::fprintf(stderr, "%-16s %-10s %-12s %12.4g %12.4g %8.3f%s\n", shape.name,
                         alg::family_name(family), res.alg_name, res.makespan, model_ref, ratio,
                         ok ? "" : "  FAIL");
            if (!ok) ++failures;
        }
    }
    if (failures != 0) {
        std::fprintf(stderr, "smoke: %d failure(s)\n", failures);
        return 1;
    }
    std::fprintf(stderr, "smoke OK\n");
    return 0;
}

void sweep_flat_model_vs_sim(Json& j, model::Machine const& m) {
    j.key("flat_model_vs_sim");
    j.open('[');
    for (Family family : kAllFamilies) {
        auto const& table = alg::algorithms(family);
        for (int a = 0; a < static_cast<int>(table.size()); ++a) {
            auto const& info = table[static_cast<std::size_t>(a)];
            if (info.hier) continue;
            std::string const name = info.name;
            // Linear-steps-per-rank tapes (rings, each-to-all stars,
            // pairwise alltoall) are quadratic in total — and their per-round
            // tags hit the 10-bit budget above p = 1024 — so cap their p.
            bool const quadratic =
                family == Family::alltoall ||
                (family == Family::allgather && (name == "flat" || name == "ring")) ||
                (family == Family::allreduce && (name == "flat" || name == "ring")) ||
                (family == Family::bcast && name == "ring");
            int const ps[] = {quadratic ? 512 : 1024, quadratic ? 1024 : 4096};
            int const counts[] = {16, 16384};  // 64 B / 64 KiB as MPI_INT
            double max_rel = 0.0;
            j.comma();
            j.open('{');
            j.str("family", alg::family_name(family));
            j.str("alg", name);
            j.boolean("expected_to_match", expected_to_match(family, name));
            j.key("points");
            j.open('[');
            for (int p : ps) {
                if (info.needs_pow2 && (p & (p - 1)) != 0) continue;
                for (int count : counts) {
                    sim::Result const res = run_sim(family, p, {}, count, 4, a);
                    if (res.error != MPI_SUCCESS) {
                        j.comma();
                        j.open('{');
                        j.integer("p", p);
                        j.integer("bytes", 4ll * count);
                        j.str("skipped", res.detail);
                        j.close('}');
                        continue;
                    }
                    double const bytes = 4.0 * count;
                    double const want = flat_model_cost(family, name, m, p, bytes);
                    double const rel = std::abs(res.makespan - want) / want;
                    max_rel = std::max(max_rel, rel);
                    j.comma();
                    j.open('{');
                    j.integer("p", p);
                    j.integer("bytes", 4ll * count);
                    j.num("sim", res.makespan);
                    j.num("model", want);
                    j.num("rel_err", rel);
                    j.close('}');
                }
            }
            j.close(']');
            j.num("max_rel_err", max_rel);
            j.boolean("matches_model", max_rel < 0.05);
            j.close('}');
        }
    }
    j.close(']');
}

void sweep_selected_flat(Json& j, model::Machine const& m) {
    // The acceptance criterion: on flat pow2 worlds the auto-selected
    // algorithm's simulated makespan is within 5% of its closed form.
    j.key("selected_flat_within_5pct");
    j.open('[');
    int const ps[] = {1024, 4096};
    for (Family family : kAllFamilies) {
        bool const per_block = family == Family::allgather || family == Family::alltoall;
        int const counts[] = {16, per_block ? 4096 : 16384};
        for (int p : ps) {
            for (int count : counts) {
                sim::Result const res = run_sim(family, p, {}, count, 4, -1);
                j.comma();
                j.open('{');
                j.str("family", alg::family_name(family));
                j.integer("p", p);
                j.integer("bytes", 4ll * count);
                if (res.error != MPI_SUCCESS) {
                    j.str("skipped", res.detail);
                    j.close('}');
                    continue;
                }
                double const want = flat_model_cost(family, res.alg_name, m, p, 4.0 * count);
                double const rel = std::abs(res.makespan - want) / want;
                j.str("alg", res.alg_name);
                j.num("sim", res.makespan);
                j.num("model", want);
                j.num("rel_err", rel);
                j.boolean("within_5pct", rel < 0.05);
                j.close('}');
            }
        }
    }
    j.close(']');
}

void sweep_divergences(Json& j, xmpi::Config const& cfg) {
    model::Machine const m = machine_of(cfg);
    model::TwoTier const t = two_tier_of(cfg);
    j.key("divergences");
    j.open('[');
    // Each row is scored twice: against the closed form as-is (rel_err) and
    // against the closed form scaled by a correction ratio fitted from a
    // replay of the same (family, algorithm, shape) at a second message
    // size (corrected_rel_err) — the sim-side analogue of the tune
    // subsystem's calibrated parameter overlay. Rows whose formula is now
    // tape-exact fit a ratio of ~1 and both errors vanish; the deliberate
    // divergences (pipelined ring, hierarchical phase overlap) record how
    // much of the gap a single fitted scalar can close.
    auto emit = [&](char const* note, Family family, int p, std::vector<int> node_map, int count,
                    int elem, int force_alg, int cal_count) {
        model::NodeShape const ns = shape_of(node_map, p);
        sim::Result const res = run_sim(family, p, node_map, count, elem, force_alg);
        j.comma();
        j.open('{');
        j.str("family", alg::family_name(family));
        j.str("note", note);
        j.integer("p", p);
        j.integer("nodes", static_cast<long long>(ns.nodes));
        j.integer("bytes", static_cast<long long>(count) * elem);
        if (res.error != MPI_SUCCESS) {
            j.str("skipped", res.detail);
            j.close('}');
            return;
        }
        double const bytes = static_cast<double>(count) * elem;
        double want = flat_model_cost(family, res.alg_name, m, p, bytes);
        if (want < 0) want = hier_model_cost(family, t, ns, p, bytes);
        j.str("alg", res.alg_name);
        j.num("sim", res.makespan);
        j.num("model", want);
        j.num("rel_err", std::abs(res.makespan - want) / want);
        sim::Result const cal =
            run_sim(family, p, std::move(node_map), cal_count, elem, force_alg);
        if (cal.error == MPI_SUCCESS && want > 0) {
            double const cal_bytes = static_cast<double>(cal_count) * elem;
            double cal_model = flat_model_cost(family, cal.alg_name, m, p, cal_bytes);
            if (cal_model < 0) cal_model = hier_model_cost(family, t, ns, p, cal_bytes);
            if (cal_model > 0 && cal.makespan > 0) {
                double const fit = cal.makespan / cal_model;
                j.num("fit_ratio", fit);
                j.num("corrected_rel_err", std::abs(res.makespan - fit * want) / (fit * want));
            }
        }
        j.close('}');
    };
    // Star flats: formerly ~2x off (the formulas serialized p-1 full
    // messages where the tape overlaps them); the sender-pipelined closed
    // forms are now tape-exact, so these rows must sit inside the 5%
    // lock-step tolerance.
    emit("star flat: sender-pipelined closed form (was ~2x)", Family::bcast, 1024, {},
         1024, 4, 0, 4096);
    emit("star flat: sender-pipelined closed form (was ~2x)", Family::reduce, 1024, {},
         1024, 4, 0, 4096);
    emit("star flat: sender-pipelined closed form (was ~2x)", Family::allgather, 1024, {},
         64, 4, 0, 256);
    emit("star flat: sender-pipelined closed form (was ~2x)", Family::allreduce, 1024, {},
         64, 4, 0, 256);
    // Pipelined ring bcast: the formula folds fill/drain into (p-2+s) equal
    // rounds; the tape pays the real per-segment store-and-forward.
    emit("pipelined ring: fill/drain vs folded rounds", Family::bcast, 1024, {}, 65536, 4, 2,
         16384);
    // Binomial trees at non-pow2 p: formerly priced at a flat ceil(log2 p)
    // rounds (~10% off); the exact ragged-subtree recursion matches the tape.
    emit("non-pow2 binomial: exact ragged recursion (was ~10%)", Family::bcast, 1000, {}, 1024,
         4, 1, 4096);
    emit("non-pow2 binomial: exact ragged recursion (was ~10%)", Family::allreduce, 1000, {},
         1024, 4, 1, 4096);
    // Hierarchical compositions at p=8192, 16 ranks/node: phase overlap and
    // per-segment relays the two-tier formulas only approximate.
    for (Family family : kAllFamilies) {
        auto const& table = alg::algorithms(family);
        int hier_idx = -1;
        for (int a = 0; a < static_cast<int>(table.size()); ++a) {
            if (table[static_cast<std::size_t>(a)].hier) hier_idx = a;
        }
        bool const per_block = family == Family::allgather || family == Family::alltoall;
        emit("hierarchical composition vs two-tier closed form", family, 8192,
             topo::block_map(8192, 16), per_block ? 256 : 16384, 4, hier_idx,
             per_block ? 64 : 4096);
    }
    j.close(']');
}

void sweep_selection_at_scale(Json& j) {
    j.key("selection_at_scale");
    j.open('[');
    long long const sizes[] = {8,     64,      512,     4096,
                               32768, 262144,  2097152, 16777216};  // 8 B .. 16 MiB
    struct Shape {
        char const* name;
        int rpn;  // 0 = flat
    };
    Shape const shapes[] = {{"flat", 0}, {"block-16", 16}};
    for (auto const& shape : shapes) {
        for (Family family : kAllFamilies) {
            for (int lg = 10; lg <= 20; ++lg) {
                int const p = 1 << lg;
                sim::World w;
                w.size = p;
                if (shape.rpn > 0) w.node_map = topo::block_map(p, shape.rpn);
                j.comma();
                j.open('{');
                j.str("shape", shape.name);
                j.str("family", alg::family_name(family));
                j.integer("p", p);
                j.key("winners");
                j.open('{');
                for (long long bytes : sizes) {
                    sim::CollSpec spec;
                    spec.family = family;
                    spec.count = static_cast<int>(bytes);
                    spec.elem_size = 1;
                    int const idx = sim::select_at_scale(w, spec);
                    j.str(std::to_string(bytes).c_str(),
                          idx >= 0 ? sim::alg_name(family, idx) : "invalid");
                }
                j.close('}');
                j.close('}');
            }
        }
    }
    j.close(']');
}

int full_sweep() {
    xmpi::Config const cfg;
    model::Machine const m = machine_of(cfg);
    Json j;
    j.open('{');
    j.str("schema", "xmpi-bench-sim-v1");
    j.key("config");
    j.open('{');
    j.num("alpha", cfg.alpha);
    j.num("beta", cfg.beta);
    j.num("o", cfg.o);
    j.num("alpha_intra", cfg.alpha_intra);
    j.num("beta_intra", cfg.beta_intra);
    j.num("o_intra", cfg.o_intra);
    j.close('}');

    // Throughput: events/second of the single-threaded event loop, topped by
    // the acceptance-scale p = 10^6 auto-selected allreduce.
    std::fprintf(stderr, "sweep: throughput...\n");
    j.key("throughput");
    j.open('[');
    struct Probe {
        char const* desc;
        Family family;
        int p;
        int rpn;
        int count;
        int elem;
    };
    Probe const probes[] = {
        {"allreduce auto, p=10^4 flat", Family::allreduce, 10'000, 0, 1024, 4},
        {"allreduce auto, p=10^5 flat", Family::allreduce, 100'000, 0, 1024, 4},
        {"allreduce auto, p=10^6 flat", Family::allreduce, 1'000'000, 0, 1024, 4},
        {"allgather auto, p=2^17 block-512", Family::allgather, 131072, 512, 8, 1},
        {"alltoall auto, p=2^17 flat", Family::alltoall, 131072, 0, 8, 1},
    };
    for (auto const& probe : probes) {
        std::vector<int> nm;
        if (probe.rpn > 0) nm = topo::block_map(probe.p, probe.rpn);
        sim::Result const res =
            run_sim(probe.family, probe.p, std::move(nm), probe.count, probe.elem, -1);
        j.comma();
        j.open('{');
        j.str("desc", probe.desc);
        j.integer("p", probe.p);
        if (res.error != MPI_SUCCESS) {
            j.str("skipped", res.detail);
            j.close('}');
            continue;
        }
        j.str("alg", res.alg_name);
        j.num("makespan", res.makespan);
        j.integer("tape_steps", static_cast<long long>(res.tape_steps));
        j.integer("events", static_cast<long long>(res.events));
        j.num("build_seconds", res.build_seconds);
        j.num("run_seconds", res.run_seconds);
        j.num("events_per_sec",
              static_cast<double>(res.events) / (res.run_seconds > 0 ? res.run_seconds : 1));
        j.close('}');
    }
    j.close(']');

    std::fprintf(stderr, "sweep: flat model vs sim...\n");
    sweep_flat_model_vs_sim(j, m);
    std::fprintf(stderr, "sweep: auto-selected flat...\n");
    sweep_selected_flat(j, m);
    std::fprintf(stderr, "sweep: divergences...\n");
    sweep_divergences(j, cfg);
    std::fprintf(stderr, "sweep: selection at scale...\n");
    sweep_selection_at_scale(j);
    j.close('}');
    j.raw("\n");
    std::fputs(j.out.c_str(), stdout);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && std::strcmp(argv[1], "--scale-check") == 0) return scale_check();
    if (argc >= 3 && std::strcmp(argv[1], "--smoke") == 0) return smoke(std::atoi(argv[2]));
    if (argc >= 2) {
        std::fprintf(stderr, "usage: %s [--smoke P | --scale-check]\n", argv[0]);
        return 2;
    }
    return full_sweep();
}
