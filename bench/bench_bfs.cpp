/// @file bench_bfs.cpp
/// @brief Regenerates Fig. 10: BFS running time on the three graph families
/// (GNM, RGG-2D, PLG-as-RHG) for the five exchange strategies: built-in
/// MPI_Alltoallv (plain MPI and KaMPIng — the "no overhead" pair),
/// MPI_Neighbor_alltoallv, KaMPIng sparse (NBX) and KaMPIng grid. Also
/// reports the neighborhood variant with per-level topology rebuild
/// (modeling dynamic communication patterns) and an analytic sweep to the
/// paper's largest scales.
///
/// Expected shape (paper Fig. 10): grid wins on GNM/RHG at scale; on RGG the
/// sparse/neighbor variants win by exploiting locality; plain alltoallv
/// degrades linearly in p; rebuilding the topology each step does not scale.
#include <cstdio>
#include <vector>

#include "apps/bfs/bfs_kamping.hpp"
#include "apps/bfs/bfs_mpi.hpp"
#include "apps/bfs/bfs_variants.hpp"
#include "kagen/kagen.hpp"
#include "model/analytic.hpp"
#include "xmpi/xmpi.hpp"

namespace {

enum class Family { gnm, rgg2d, plg };

kagen::Graph make_graph(kamping::Communicator const& comm, Family f, std::uint64_t n_per_rank,
                        std::uint64_t m_per_rank) {
    switch (f) {
        case Family::gnm:
            return kagen::generate_gnm(comm, n_per_rank, m_per_rank, 4242);
        case Family::rgg2d:
            return kagen::generate_rgg2d(
                comm, n_per_rank, 2.0 * static_cast<double>(m_per_rank) / n_per_rank, 4242);
        case Family::plg:
            return kagen::generate_plg(comm, n_per_rank, m_per_rank, 2.8, 4242);
    }
    return {};
}

template <typename BfsFn>
double measure(Family f, BfsFn fn, int p, std::uint64_t n_per_rank, std::uint64_t m_per_rank) {
    double modeled = 0;
    xmpi::run(p, [&](int rank) {
        kamping::Communicator comm;
        auto g = make_graph(comm, f, n_per_rank, m_per_rank);
        double const t0 = xmpi::vtime_now();
        auto dist = fn(g, 0, MPI_COMM_WORLD);
        double const t1 = xmpi::vtime_now();
        if (rank == 0) modeled = t1 - t0;
        (void)dist;
    });
    return modeled;
}

}  // namespace

int main() {
    std::uint64_t const n_per_rank = 1 << 9;   // scaled-down from the paper's 2^12
    std::uint64_t const m_per_rank = 1 << 12;  // and 2^15 edges per rank
    char const* const family_name[] = {"GNM", "RGG-2D", "PLG(RHG)"};

    std::printf("=== Fig. 10: BFS per exchange algorithm (modeled time [ms], 2^9 vertices and "
                "2^12 edges per rank) ===\n");
    for (Family f : {Family::gnm, Family::rgg2d, Family::plg}) {
        std::printf("\n--- %s ---\n", family_name[static_cast<int>(f)]);
        std::printf("%4s %10s %10s %12s %10s %10s %14s\n", "p", "mpi", "kamping", "mpi_neighbor",
                    "sparse", "grid", "neighbor_rebld");
        for (int p : {4, 8, 16}) {
            double const t_mpi = measure(f, &apps::bfs::mpi::bfs, p, n_per_rank, m_per_rank);
            double const t_kamping =
                measure(f, &apps::bfs::kamping_impl::bfs, p, n_per_rank, m_per_rank);
            double const t_nbr = measure(
                f,
                [](auto const& g, auto s, MPI_Comm c) {
                    return apps::bfs::mpi_neighbor::bfs(g, s, c, false);
                },
                p, n_per_rank, m_per_rank);
            double const t_sparse =
                measure(f, &apps::bfs::kamping_sparse::bfs, p, n_per_rank, m_per_rank);
            double const t_grid =
                measure(f, &apps::bfs::kamping_grid::bfs, p, n_per_rank, m_per_rank);
            double const t_rebuild = measure(
                f,
                [](auto const& g, auto s, MPI_Comm c) {
                    return apps::bfs::mpi_neighbor::bfs(g, s, c, true);
                },
                p, n_per_rank, m_per_rank);
            std::printf("%4d %10.3f %10.3f %12.3f %10.3f %10.3f %14.3f\n", p, t_mpi * 1e3,
                        t_kamping * 1e3, t_nbr * 1e3, t_sparse * 1e3, t_grid * 1e3,
                        t_rebuild * 1e3);
        }
    }

    // Analytic sweep: per-BFS cost = levels * per-level exchange cost. The
    // three families differ in diameter (levels) and in how many
    // communication partners a rank has (locality).
    std::printf("\n--- analytic extrapolation (per-family shapes, total BFS time [ms]) ---\n");
    bench::model::Machine const machine;
    struct FamilyModel {
        char const* name;
        double levels_base;    // diameter at p = 4
        double levels_growth;  // additional levels per doubling of p
        double partner_frac;   // fraction of p a rank talks to (locality)
    };
    // GNM: tiny diameter, partners ~ all ranks. RGG: diameter grows with
    // sqrt(p), partners constant (adjacent strips). PLG: small diameter,
    // partners ~ all ranks (hubs).
    FamilyModel const families[] = {
        {"GNM", 4, 0.3, 1.0},
        {"RGG-2D", 8, 4.0, 0.08},
        {"PLG(RHG)", 4, 0.3, 1.0},
    };
    double const frontier_bytes = static_cast<double>(m_per_rank) * 8.0 / 4.0;
    for (auto const& fam : families) {
        std::printf("\n%s:\n%8s %12s %12s %12s %12s\n", fam.name, "p", "alltoallv", "neighbor",
                    "sparse", "grid");
        for (double p = 4; p <= (1 << 14); p *= 4) {
            double const levels = fam.levels_base + fam.levels_growth * bench::model::log2d(p / 4);
            double const partners = std::max(1.0, fam.partner_frac * p);
            auto const level = bench::model::bfs_level(machine, p, partners, frontier_bytes);
            std::printf("%8.0f %12.3f %12.3f %12.3f %12.3f\n", p, levels * level.alltoallv * 1e3,
                        levels * level.neighbor * 1e3, levels * level.sparse * 1e3,
                        levels * level.grid * 1e3);
        }
    }
    std::printf(
        "\nShape check: KaMPIng == plain MPI (no overhead); on GNM/PLG the grid variant wins at\n"
        "scale; on RGG-2D locality makes sparse/neighbor fastest; alltoallv degrades ~linearly.\n");
    return 0;
}
