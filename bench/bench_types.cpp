/// @file bench_types.cpp
/// @brief Regenerates the §III-D4 experiment ("towards sensible defaults for
/// type construction"): communicating an array of padded structs as (a) the
/// KaMPIng default — one contiguous block of bytes, (b) a proper MPI struct
/// type that skips the alignment gaps, and (c) explicit serialization.
///
/// Expected shape (paper §III-D4): contiguous bytes fastest (block copy);
/// the struct type pays for gap-skipping pack/unpack; serialization incurs a
/// clearly non-negligible overhead — the reason KaMPIng keeps it opt-in.
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "kamping/kamping.hpp"
#include "xmpi/xmpi.hpp"

namespace {

/// A struct with alignment gaps, as in the paper's discussion.
struct Padded {
    char tag;
    // 7 bytes of padding
    double value;
    int id;
    // 4 bytes of padding
};
static_assert(sizeof(Padded) == 24);

constexpr int kInner = 30;

template <typename Op>
void drive(benchmark::State& state, Op&& op) {
    for (auto _ : state) {
        double elapsed = 0;
        xmpi::run(2, [&](int rank) {
            op(rank);  // warmup
            auto const t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kInner; ++i) op(rank);
            auto const t1 = std::chrono::steady_clock::now();
            if (rank == 0) elapsed = std::chrono::duration<double>(t1 - t0).count() / kInner;
        });
        state.SetIterationTime(elapsed);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                            static_cast<std::int64_t>(sizeof(Padded)));
}

/// (a) KaMPIng default: trivially copyable -> contiguous bytes (this is what
/// mpi_datatype<Padded>() resolves to).
void BM_pingpong_contiguous_bytes(benchmark::State& state) {
    auto const n = static_cast<int>(state.range(0));
    drive(state, [n](int rank) {
        std::vector<Padded> buf(static_cast<std::size_t>(n), Padded{'x', 1.5, 7});
        if (rank == 0) {
            MPI_Send(buf.data(), n, kamping::mpi_datatype<Padded>(), 1, 0, MPI_COMM_WORLD);
            MPI_Recv(buf.data(), n, kamping::mpi_datatype<Padded>(), 1, 0, MPI_COMM_WORLD,
                     MPI_STATUS_IGNORE);
        } else {
            MPI_Recv(buf.data(), n, kamping::mpi_datatype<Padded>(), 0, 0, MPI_COMM_WORLD,
                     MPI_STATUS_IGNORE);
            MPI_Send(buf.data(), n, kamping::mpi_datatype<Padded>(), 0, 0, MPI_COMM_WORLD);
        }
        benchmark::DoNotOptimize(buf.data());
    });
}
BENCHMARK(BM_pingpong_contiguous_bytes)->Arg(64)->Arg(4096)->Arg(65536)->UseManualTime()->MinTime(0.05);

/// (b) MPI struct type with gap skipping (what the standard suggests).
void BM_pingpong_struct_type(benchmark::State& state) {
    auto const n = static_cast<int>(state.range(0));
    drive(state, [n](int rank) {
        static MPI_Datatype const struct_type = [] {
            MPI_Datatype t = kamping::struct_type<Padded>::data_type();
            MPI_Type_commit(&t);
            return t;
        }();
        std::vector<Padded> buf(static_cast<std::size_t>(n), Padded{'x', 1.5, 7});
        if (rank == 0) {
            MPI_Send(buf.data(), n, struct_type, 1, 0, MPI_COMM_WORLD);
            MPI_Recv(buf.data(), n, struct_type, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        } else {
            MPI_Recv(buf.data(), n, struct_type, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
            MPI_Send(buf.data(), n, struct_type, 0, 0, MPI_COMM_WORLD);
        }
        benchmark::DoNotOptimize(buf.data());
    });
}
BENCHMARK(BM_pingpong_struct_type)->Arg(64)->Arg(4096)->Arg(65536)->UseManualTime()->MinTime(0.05);

/// (c) Explicit serialization (as_serialized / as_deserializable).
void BM_pingpong_serialized(benchmark::State& state) {
    auto const n = static_cast<std::size_t>(state.range(0));
    drive(state, [n](int rank) {
        using namespace kamping;
        Communicator comm;
        std::vector<double> buf(n * 3, 1.5);  // same payload volume
        if (rank == 0) {
            comm.send(send_buf(as_serialized(buf)), destination(1));
            buf = comm.recv(recv_buf(as_deserializable<std::vector<double>>()));
        } else {
            auto got = comm.recv(recv_buf(as_deserializable<std::vector<double>>()));
            comm.send(send_buf(as_serialized(got)), destination(0));
        }
        benchmark::DoNotOptimize(buf.data());
    });
}
BENCHMARK(BM_pingpong_serialized)->Arg(64)->Arg(4096)->Arg(65536)->UseManualTime()->MinTime(0.05);

}  // namespace

BENCHMARK_MAIN();
