/// @file bench_suffix_label.cpp
/// @brief Regenerates the remaining §IV application results:
///  - §IV-A suffix-array construction: distributed prefix doubling on
///    KaMPIng (the paper's 163-LoC example) — runtime and correctness on
///    random and repetitive texts;
///  - §IV-B dKaMinPar label propagation: the plain-MPI and KaMPIng variants
///    must have identical results and runtimes within noise (the paper
///    observed "the same running times for all variants").
#include <cstdio>
#include <random>
#include <vector>

#include "apps/label_propagation/label_propagation.hpp"
#include "apps/suffix_array/prefix_doubling.hpp"
#include "kagen/kagen.hpp"
#include "xmpi/xmpi.hpp"

namespace {

double bench_suffix(int p, std::size_t n, int alphabet) {
    double modeled = 0;
    xmpi::run(p, [&, p](int rank) {
        std::size_t const chunk = (n + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
        std::size_t const b = std::min(n, chunk * static_cast<std::size_t>(rank));
        std::size_t const e = std::min(n, b + chunk);
        std::vector<unsigned char> local(e - b);
        std::mt19937 gen(5000 + static_cast<unsigned>(rank));
        for (auto& c : local) c = static_cast<unsigned char>('a' + gen() % alphabet);
        double const t0 = xmpi::vtime_now();
        auto sa = apps::suffix_array::prefix_doubling(local, MPI_COMM_WORLD);
        double const t1 = xmpi::vtime_now();
        if (rank == 0) modeled = t1 - t0;
        (void)sa;
    });
    return modeled;
}

struct LpTimes {
    double mpi = 0, kamping = 0;
    bool identical = false;
};

LpTimes bench_label_prop(int p, std::uint64_t n_per_rank) {
    LpTimes out;
    xmpi::run(p, [&](int rank) {
        kamping::Communicator comm;
        auto g = kagen::generate_rgg2d(comm, n_per_rank, 8.0, 77);
        double t0 = xmpi::vtime_now();
        auto a = apps::label_propagation::mpi::cluster(g, 64, 15, MPI_COMM_WORLD);
        double t1 = xmpi::vtime_now();
        double const t_mpi = t1 - t0;
        t0 = xmpi::vtime_now();
        auto b = apps::label_propagation::kamping_impl::cluster(g, 64, 15, MPI_COMM_WORLD);
        t1 = xmpi::vtime_now();
        if (rank == 0) {
            out.mpi = t_mpi;
            out.kamping = t1 - t0;
            out.identical = a == b;
        }
    });
    return out;
}

}  // namespace

int main() {
    std::printf("=== §IV-A: suffix array by distributed prefix doubling (modeled time) ===\n");
    std::printf("%4s %10s %12s %12s\n", "p", "n", "random[ms]", "repetitive[ms]");
    for (int p : {2, 4, 8}) {
        double const t_rand = bench_suffix(p, 40000, 26);
        double const t_rep = bench_suffix(p, 40000, 2);
        std::printf("%4d %10d %12.2f %12.2f\n", p, 40000, t_rand * 1e3, t_rep * 1e3);
    }
    std::printf("(LoC comparison: see bench_loc — paper reports 163 LoC KaMPIng vs 426 plain "
                "MPI for this algorithm.)\n");

    std::printf("\n=== §IV-B: label propagation, plain MPI vs KaMPIng ===\n");
    std::printf("%4s %12s %14s %10s %10s\n", "p", "mpi[ms]", "kamping[ms]", "ratio", "identical");
    for (int p : {4, 8, 16}) {
        auto const t = bench_label_prop(p, 1 << 9);
        std::printf("%4d %12.2f %14.2f %10.3f %10s\n", p, t.mpi * 1e3, t.kamping * 1e3,
                    t.kamping / t.mpi, t.identical ? "yes" : "NO");
    }
    std::printf("\nShape check: ratio ~1.0 (paper: same running times for all variants).\n");
    return 0;
}
