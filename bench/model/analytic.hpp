/// @file analytic.hpp
/// @brief Closed-form cost model used to extrapolate the figure sweeps to
/// the paper's largest scales (up to 2^14 ranks), where running one thread
/// per rank is infeasible on a laptop-class host. The formulas price the
/// exact message patterns the xmpi collectives implement (DESIGN.md §2), so
/// small-p modeled measurements and the analytic curves line up.
#pragma once

#include <cmath>

namespace bench::model {

/// LogP-style machine parameters; defaults match xmpi::Config.
struct Machine {
    double alpha = 2e-6;   ///< per-message latency [s]
    double beta = 8e-10;   ///< per-byte cost [s/B]
    double o = 2e-7;       ///< sender overhead per message [s]
    double compute_rate = 2.5e8;  ///< elements/s for local sort-like work
};

inline double log2d(double x) { return std::log2(x); }

/// Pairwise-exchange alltoallv: p-1 rounds, total volume `bytes` per rank.
inline double alltoallv(Machine const& m, double p, double bytes_per_rank) {
    return (p - 1) * (m.alpha + m.o) + m.beta * bytes_per_rank;
}

/// Recursive-doubling allgather of `bytes` per rank.
inline double allgather(Machine const& m, double p, double bytes_per_rank) {
    return log2d(p) * (m.alpha + m.o) + m.beta * bytes_per_rank * (p - 1);
}

/// Dissemination barrier / small allreduce.
inline double allreduce_small(Machine const& m, double p) {
    return log2d(p) * 2 * (m.alpha + m.o);
}

/// NBX sparse exchange with out-degree k and `bytes` total payload:
/// issends + probe drain + non-blocking barrier.
inline double sparse_alltoallv(Machine const& m, double p, double k, double bytes) {
    return k * (m.alpha + m.o) + m.beta * bytes + 2 * log2d(p) * (m.alpha + m.o);
}

/// Two-hop grid alltoallv: 2*(sqrt(p)-1) messages, twice the volume, plus
/// the count exchanges within rows/columns.
inline double grid_alltoallv(Machine const& m, double p, double bytes) {
    double const s = std::sqrt(p);
    return 4 * (s - 1) * (m.alpha + m.o) + 2 * m.beta * bytes;
}

/// Neighborhood alltoallv with degree k (static topology).
inline double neighbor_alltoallv(Machine const& m, double k, double bytes) {
    return 2 * k * (m.alpha + m.o) + m.beta * bytes;
}

// ---------------------------------------------------------------------------
// Per-algorithm collective costs. These price the exact schedules built in
// src/xmpi/algorithms/ and are what the substrate's automatic algorithm
// selection minimizes (same formulas, machine parameters taken from the
// universe's Config), so modeled measurements, the selection crossovers and
// these analytic curves all line up. `bytes` is the family's characteristic
// per-rank message size: the full payload for bcast/reduce/allreduce, one
// rank's contribution for allgather, one per-destination block for alltoall.
// ---------------------------------------------------------------------------

inline double ceil_log2(double p) { return std::ceil(log2d(p < 2 ? 2 : p)); }

/// Segments the pipelined ring bcast splits `bytes` into (64 KiB target,
/// capped; mirrored by xmpi::detail::alg::ring_segments).
inline double ring_pipeline_segments(double bytes) {
    double const s = std::ceil(bytes / (64.0 * 1024.0));
    return s < 1 ? 1 : (s > 64 ? 64 : s);
}

inline double bcast_flat(Machine const& m, double p, double bytes) {
    return (p - 1) * (m.alpha + m.o + m.beta * bytes);
}
inline double bcast_binomial(Machine const& m, double p, double bytes) {
    return ceil_log2(p) * (m.alpha + m.o + m.beta * bytes);
}
inline double bcast_ring_pipelined(Machine const& m, double p, double bytes) {
    double const s = ring_pipeline_segments(bytes);
    return (p - 2 + s) * (m.alpha + m.o + m.beta * bytes / s);
}

inline double reduce_flat(Machine const& m, double p, double bytes) {
    return (p - 1) * (m.alpha + m.o + m.beta * bytes);
}
inline double reduce_binomial(Machine const& m, double p, double bytes) {
    return ceil_log2(p) * (m.alpha + m.o + m.beta * bytes);
}

inline double allgather_flat(Machine const& m, double p, double bytes) {
    return (p - 1) * (m.alpha + m.o) + (p - 1) * m.beta * bytes;
}
inline double allgather_rdoubling(Machine const& m, double p, double bytes) {
    return ceil_log2(p) * (m.alpha + m.o) + (p - 1) * m.beta * bytes;
}
inline double allgather_ring(Machine const& m, double p, double bytes) {
    return (p - 1) * (m.alpha + m.o + m.beta * bytes);
}

inline double allreduce_flat(Machine const& m, double p, double bytes) {
    return (p - 1) * (m.alpha + m.o) + (p - 1) * m.beta * bytes;
}
inline double allreduce_rdoubling(Machine const& m, double p, double bytes) {
    return ceil_log2(p) * (m.alpha + m.o + m.beta * bytes);
}
/// Binomial reduce to rank 0 followed by a binomial bcast.
inline double allreduce_binomial(Machine const& m, double p, double bytes) {
    return 2 * ceil_log2(p) * (m.alpha + m.o + m.beta * bytes);
}
/// Recursive-halving reduce-scatter + recursive-doubling allgather.
inline double allreduce_rabenseifner(Machine const& m, double p, double bytes) {
    return 2 * ceil_log2(p) * (m.alpha + m.o) + 2 * m.beta * bytes * (p - 1) / p;
}
/// Ring reduce-scatter + ring allgather (commutative ops only).
inline double allreduce_ring(Machine const& m, double p, double bytes) {
    return 2 * (p - 1) * (m.alpha + m.o) + 2 * m.beta * bytes * (p - 1) / p;
}

inline double alltoall_flat(Machine const& m, double p, double block_bytes) {
    return (p - 1) * (m.alpha + m.o + m.beta * block_bytes);
}
/// Bruck: ceil(log2 p) rounds, each moving ~p/2 blocks.
inline double alltoall_bruck(Machine const& m, double p, double block_bytes) {
    return ceil_log2(p) * (m.alpha + m.o + m.beta * block_bytes * p / 2);
}

/// Fig. 8: sample sort of n elements/rank of `elem_bytes` each.
/// Phases: local sample + allgatherv of samples, local sort, pairwise
/// alltoallv of all data, final merge/sort.
inline double sample_sort(Machine const& m, double p, double n, double elem_bytes) {
    double const samples = 16 * log2d(p) + 1;
    double const sort_local = n * log2d(std::max(2.0, n)) / m.compute_rate;
    return allgather(m, p, samples * elem_bytes)       // sample exchange
           + samples * p * log2d(samples * p) / m.compute_rate  // sort samples
           + sort_local                                 // local sort
           + alltoallv(m, p, n * elem_bytes)            // bucket exchange
           + sort_local;                                // final sort
}

/// Fig. 10: one BFS level exchanging `frontier_bytes` to `partners` ranks,
/// for each exchange algorithm. A full BFS is the sum over its levels; for
/// the shape comparison we report the per-level cost times the expected
/// number of levels (diameter).
struct BfsLevel {
    double alltoallv;
    double neighbor;
    double sparse;
    double grid;
};

inline BfsLevel bfs_level(Machine const& m, double p, double partners, double frontier_bytes) {
    BfsLevel r{};
    r.alltoallv = alltoallv(m, p, frontier_bytes) + allreduce_small(m, p);
    r.neighbor = neighbor_alltoallv(m, partners, frontier_bytes) + allreduce_small(m, p);
    r.sparse = sparse_alltoallv(m, p, partners, frontier_bytes) + allreduce_small(m, p);
    r.grid = grid_alltoallv(m, p, frontier_bytes) + allreduce_small(m, p);
    return r;
}

}  // namespace bench::model
