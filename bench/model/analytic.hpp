/// @file analytic.hpp
/// @brief Closed-form cost model used to extrapolate the figure sweeps to
/// the paper's largest scales (up to 2^14 ranks), where running one thread
/// per rank is infeasible on a laptop-class host. The formulas price the
/// exact message patterns the xmpi collectives implement (DESIGN.md §2), so
/// small-p modeled measurements and the analytic curves line up.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>

namespace bench::model {

/// LogP-style machine parameters; defaults match xmpi::Config. On a
/// hierarchical topology one Machine describes one tier (inter-node or
/// intra-node); see TwoTier below.
struct Machine {
    double alpha = 2e-6;   ///< per-message latency [s]
    double beta = 8e-10;   ///< per-byte cost [s/B]
    double o = 2e-7;       ///< sender overhead per message [s]
    double compute_rate = 2.5e8;  ///< elements/s for local sort-like work
};

/// Node shape of a hierarchical (two-tier) topology: how a communicator's p
/// ranks are spread over nodes. nodes <= 1 or max_ppn <= 1 degenerates to
/// the flat single-tier network.
struct NodeShape {
    double nodes = 1;    ///< number of distinct nodes
    double max_ppn = 1;  ///< ranks on the largest node
    double min_ppn = 1;  ///< ranks on the smallest node
};

/// The two-tier machine: inter-node network plus intra-node shared memory.
/// Defaults mirror xmpi::Config's inter/intra parameter pairs.
///
/// The copy tier prices the zero-copy shared-memory transport (src/xmpi/shm):
/// a rendezvous publish costs `copy_sync` once (flag synchronization), after
/// which any number of same-node peers read the buffer concurrently at
/// `gamma_copy` seconds per byte each. Contrast with the message intra tier,
/// where every hop pays alpha + o and the payload crosses the wire twice
/// (pack + unpack) instead of once.
struct TwoTier {
    Machine inter{};
    Machine intra{2e-7, 5e-11, 5e-8, 2.5e8};
    double gamma_copy = 2e-11;  ///< per-byte direct-copy cost [s/B]
    double copy_sync = 1e-7;    ///< rendezvous flag-synchronization cost [s]
};

inline double log2d(double x) { return std::log2(x); }

/// Pairwise-exchange alltoallv: p-1 rounds, total volume `bytes` per rank.
inline double alltoallv(Machine const& m, double p, double bytes_per_rank) {
    return (p - 1) * (m.alpha + m.o) + m.beta * bytes_per_rank;
}

/// Recursive-doubling allgather of `bytes` per rank.
inline double allgather(Machine const& m, double p, double bytes_per_rank) {
    return log2d(p) * (m.alpha + m.o) + m.beta * bytes_per_rank * (p - 1);
}

/// Dissemination barrier / small allreduce.
inline double allreduce_small(Machine const& m, double p) {
    return log2d(p) * 2 * (m.alpha + m.o);
}

/// NBX sparse exchange with out-degree k and `bytes` total payload:
/// issends + probe drain + non-blocking barrier.
inline double sparse_alltoallv(Machine const& m, double p, double k, double bytes) {
    return k * (m.alpha + m.o) + m.beta * bytes + 2 * log2d(p) * (m.alpha + m.o);
}

/// Two-hop grid alltoallv: 2*(sqrt(p)-1) messages, twice the volume, plus
/// the count exchanges within rows/columns.
inline double grid_alltoallv(Machine const& m, double p, double bytes) {
    double const s = std::sqrt(p);
    return 4 * (s - 1) * (m.alpha + m.o) + 2 * m.beta * bytes;
}

/// Neighborhood alltoallv with degree k (static topology).
inline double neighbor_alltoallv(Machine const& m, double k, double bytes) {
    return 2 * k * (m.alpha + m.o) + m.beta * bytes;
}

// ---------------------------------------------------------------------------
// Per-algorithm collective costs. These price the exact schedules built in
// src/xmpi/algorithms/ and are what the substrate's automatic algorithm
// selection minimizes (same formulas, machine parameters taken from the
// universe's Config), so modeled measurements, the selection crossovers and
// these analytic curves all line up. `bytes` is the family's characteristic
// per-rank message size: the full payload for bcast/reduce/allreduce, one
// rank's contribution for allgather, one per-destination block for alltoall.
// ---------------------------------------------------------------------------

inline double ceil_log2(double p) { return std::ceil(log2d(p < 2 ? 2 : p)); }

/// Hard cap on pipeline segments: step tags budget 10 bits per collective
/// sequence number and the hierarchical tag bases are 256 apart, so per-
/// segment tag offsets must stay below 64.
inline constexpr double kMaxPipelineSegments = 64;

/// Segment-size override shared between the substrate and this model:
/// 0 = automatic (the per-shape formulas below), > 0 = forced segment bytes.
/// The xmpi runtime writes the resolved XMPI_SEGMENT_BYTES / XMPI_T_segment
/// value here so schedule builders and these cost formulas always agree on
/// the segmentation (selection crossovers would otherwise drift from the
/// schedules actually built).
inline std::atomic<double>& forced_segment_bytes() {
    static std::atomic<double> v{0.0};
    return v;
}

inline double clamp_segments(double s, double bytes) {
    if (!(s > 1)) return 1;
    if (s > kMaxPipelineSegments) s = kMaxPipelineSegments;
    if (s > bytes && bytes >= 1) s = std::ceil(bytes);  // at least one byte per segment
    return s < 1 ? 1 : s;
}

/// Segments the pipelined ring bcast splits `bytes` into (64 KiB target,
/// capped; mirrored by xmpi::detail::alg::ring_segments). An explicit
/// forced_segment_bytes() overrides the target.
inline double ring_pipeline_segments(double bytes) {
    double const forced = forced_segment_bytes().load(std::memory_order_relaxed);
    double const target = forced > 0 ? forced : 64.0 * 1024.0;
    return clamp_segments(std::ceil(bytes / target), bytes);
}

/// Optimal segment count for a phase pipeline: segmenting turns a
/// non-overlapped cost `overlapped_cost` (the fill/drain work that can hide
/// behind the steady-state phase once segmented) into overlapped_cost/nseg,
/// at a price of `alpha_per_seg` extra latency per segment. Minimizing
/// overlapped_cost/nseg + nseg*alpha_per_seg gives nseg* =
/// sqrt(overlapped_cost / alpha_per_seg). forced_segment_bytes() overrides
/// (nseg = bytes / forced), and the result is clamped to the tag budget.
inline double pipeline_segments(double bytes, double overlapped_cost, double alpha_per_seg) {
    double const forced = forced_segment_bytes().load(std::memory_order_relaxed);
    if (forced > 0) return clamp_segments(std::ceil(bytes / forced), bytes);
    if (!(overlapped_cost > 0) || !(alpha_per_seg > 0)) return 1;
    return clamp_segments(std::round(std::sqrt(overlapped_cost / alpha_per_seg)), bytes);
}

namespace detail {

inline int ceil_log2_int(double p) {
    unsigned long long const q =
        static_cast<unsigned long long>(p < 1 ? 1 : std::llround(p));
    int k = 0;
    while (k < 63 && (1ull << k) < q) ++k;
    return k;
}

/// Makespans of full power-of-two binomial bcast subtrees: g2[k] is the
/// virtual-time finish of a subtree of 2^k ranks whose root starts sending
/// at 0, with the descending-offset send order append_binomial_bcast uses.
/// The root's j-th send completes at j*o, the message lands c = alpha +
/// beta*bytes later, and the child at offset 2^(k-j) roots a full subtree
/// of 2^(k-j) ranks.
inline void bcast_pow2_subtrees(double o, double c, int kmax, double* g2) {
    g2[0] = 0.0;
    for (int k = 1; k <= kmax; ++k) {
        double best = k * o;  // the root's own last send completes
        for (int j = 1; j <= k; ++j) best = std::max(best, j * o + c + g2[k - j]);
        g2[k] = best;
    }
}

}  // namespace detail

inline double bcast_flat(Machine const& m, double p, double bytes) {
    // Tape-exact: the root pays o per egress message back-to-back; the last
    // message leaves at (p-1)*o and lands alpha + beta*bytes later. The old
    // (p-1)*(alpha+o+beta*bytes) form serialized what the executor overlaps
    // (~2x recorded divergence, BENCH_sim.json). Selection uses
    // bcast_flat_select below instead.
    return (p - 1) * m.o + m.alpha + m.beta * bytes;
}
/// Exact virtual-time makespan of the binomial bcast tape over p ranks
/// (p need not be a power of two), matching append_binomial_bcast: K =
/// ceil_log2(p) rounds, the root's first send feeds the ragged remainder
/// subtree of p - 2^(K-1) ranks, the later sends feed full power-of-two
/// subtrees. The old K*(alpha+o+beta*bytes) closed form ignored the ragged
/// last round (~10% recorded divergence at p=1000, BENCH_sim.json).
inline double bcast_binomial(Machine const& m, double p, double bytes) {
    double const o = m.o;
    double const c = m.alpha + m.beta * bytes;
    unsigned long long q =
        static_cast<unsigned long long>(p < 1 ? 1 : std::llround(p));
    if (q <= 1) return 0.0;
    double g2[64];
    detail::bcast_pow2_subtrees(o, c, detail::ceil_log2_int(p), g2);
    double best = 0.0;   // finish over all subtrees peeled off so far
    double base = 0.0;   // start time of the current ragged subtree's root
    while (q > 1) {
        int const K = detail::ceil_log2_int(static_cast<double>(q));
        if ((q & (q - 1)) == 0) {  // power of two: closed subtree table
            best = std::max(best, base + g2[K]);
            return best;
        }
        // Root finishes its own K sends at K*o; sends j = 2..K feed full
        // power-of-two subtrees of 2^(K-j) ranks each.
        double local = K * o;
        for (int j = 2; j <= K; ++j) local = std::max(local, j * o + c + g2[K - j]);
        best = std::max(best, base + local);
        // The first send (completing at o, landing at o + c) roots the
        // ragged remainder of q - 2^(K-1) ranks.
        base += o + c;
        q -= 1ull << (K - 1);
    }
    return std::max(best, base);
}
inline double bcast_ring_pipelined(Machine const& m, double p, double bytes) {
    double const s = ring_pipeline_segments(bytes);
    return (p - 2 + s) * (m.alpha + m.o + m.beta * bytes / s);
}

inline double reduce_flat(Machine const& m, double p, double bytes) {
    // Tape-exact and p-independent: all p-1 leaves send concurrently at time
    // 0 (each paying its own o), the root's ingress costs nothing per
    // message, so the makespan is one message's flight time.
    (void)p;
    return m.o + m.alpha + m.beta * bytes;
}
/// Exact virtual-time makespan of the binomial reduce tape over p ranks
/// (p need not be a power of two), matching append_binomial_reduce: the
/// root's children at offsets 1, 2, ..., 2^(K-1) all start folding at time
/// 0; a full power-of-two subtree of 2^k ranks has its result in hand at
/// k*(o+c), and the last (ragged) child covers the remainder recursively.
inline double reduce_binomial(Machine const& m, double p, double bytes) {
    double const oc = m.o + m.alpha + m.beta * bytes;
    unsigned long long q =
        static_cast<unsigned long long>(p < 1 ? 1 : std::llround(p));
    if (q <= 1) return 0.0;
    double best = 0.0;   // latest arrival at the root seen so far
    double base = 0.0;   // hops already accumulated on the ragged chain
    while (q > 1) {
        int const K = detail::ceil_log2_int(static_cast<double>(q));
        if ((q & (q - 1)) == 0) {  // power of two: h = log2(q)*(o+c)
            best = std::max(best, base + K * oc);
            return best;
        }
        // Non-ragged children of this root are full subtrees of up to
        // 2^(K-2) ranks; the ragged child forwards one hop later.
        base += oc;
        best = std::max(best, base + (K - 2) * oc);
        q -= 1ull << (K - 1);
    }
    return std::max(best, base);
}

inline double allgather_flat(Machine const& m, double p, double bytes) {
    // Tape-exact: every rank streams its p-1 egress copies back-to-back
    // (concurrently across ranks), so the last message leaves at (p-1)*o
    // and lands alpha + beta*bytes later.
    return (p - 1) * m.o + m.alpha + m.beta * bytes;
}
inline double allgather_rdoubling(Machine const& m, double p, double bytes) {
    return ceil_log2(p) * (m.alpha + m.o) + (p - 1) * m.beta * bytes;
}
inline double allgather_ring(Machine const& m, double p, double bytes) {
    return (p - 1) * (m.alpha + m.o + m.beta * bytes);
}

inline double allreduce_flat(Machine const& m, double p, double bytes) {
    // Tape-exact: the flat allreduce's critical path is bounded by its
    // star fan-out, same shape as allgather_flat (verified against the
    // BENCH_sim.json lock-step tape).
    return (p - 1) * m.o + m.alpha + m.beta * bytes;
}
inline double allreduce_rdoubling(Machine const& m, double p, double bytes) {
    return ceil_log2(p) * (m.alpha + m.o + m.beta * bytes);
}
/// Binomial reduce to rank 0 followed by a binomial bcast (both exact in
/// the ragged last round).
inline double allreduce_binomial(Machine const& m, double p, double bytes) {
    return reduce_binomial(m, p, bytes) + bcast_binomial(m, p, bytes);
}
/// Recursive-halving reduce-scatter + recursive-doubling allgather.
inline double allreduce_rabenseifner(Machine const& m, double p, double bytes) {
    return 2 * ceil_log2(p) * (m.alpha + m.o) + 2 * m.beta * bytes * (p - 1) / p;
}
/// Ring reduce-scatter + ring allgather (commutative ops only).
inline double allreduce_ring(Machine const& m, double p, double bytes) {
    return 2 * (p - 1) * (m.alpha + m.o) + 2 * m.beta * bytes * (p - 1) / p;
}

inline double alltoall_flat(Machine const& m, double p, double block_bytes) {
    return (p - 1) * (m.alpha + m.o + m.beta * block_bytes);
}
/// Bruck: ceil(log2 p) rounds, each moving ~p/2 blocks.
inline double alltoall_bruck(Machine const& m, double p, double block_bytes) {
    return ceil_log2(p) * (m.alpha + m.o + m.beta * block_bytes * p / 2);
}

// ---------------------------------------------------------------------------
// Selection-side star costs. The tape-exact *_flat forms above price an
// isolated collective, where the star root's p-1 messages overlap perfectly
// in flight (the LogP tape has no shared wire). Algorithm selection charges
// the star root's egress link serialization on top — beta per byte per
// message — because a star that is virtually "free" would displace the
// logarithmic algorithms at every size, which is wrong on any machine where
// the root's NIC is a shared resource. The registry's tables point at these
// variants; the bench/sim divergence tables use the tape-exact forms.
// ---------------------------------------------------------------------------

inline double star_flat_select(Machine const& m, double p, double bytes) {
    return (p - 1) * (m.o + m.beta * bytes) + m.alpha;
}
inline double bcast_flat_select(Machine const& m, double p, double bytes) {
    return star_flat_select(m, p, bytes);
}
inline double reduce_flat_select(Machine const& m, double p, double bytes) {
    return star_flat_select(m, p, bytes);
}
inline double allgather_flat_select(Machine const& m, double p, double bytes) {
    return star_flat_select(m, p, bytes);
}
inline double allreduce_flat_select(Machine const& m, double p, double bytes) {
    return star_flat_select(m, p, bytes);
}

// ---------------------------------------------------------------------------
// Hierarchical (two-tier) collective costs. Each composition mirrors the
// leader-based schedules built in src/xmpi/algorithms/hierarchical.cpp:
// an intra-node phase priced with the shared-memory tier, an inter-node
// phase among node leaders (or slice peer groups) priced with the network
// tier, and an intra-node redistribution. The `best flat` helpers below take
// the same minimum over single-tier candidates the substrate's registry
// would, so builder choices, selection crossovers and these curves line up.
// ---------------------------------------------------------------------------

inline bool is_pow2_p(double p) {
    double r = std::round(p);
    return r >= 1 && (static_cast<unsigned long long>(r) &
                      (static_cast<unsigned long long>(r) - 1)) == 0;
}

inline double bcast_best_flat(Machine const& m, double p, double bytes) {
    return std::min({bcast_flat_select(m, p, bytes), bcast_binomial(m, p, bytes),
                     bcast_ring_pipelined(m, p, bytes)});
}

inline double reduce_best_flat(Machine const& m, double p, double bytes) {
    return std::min(reduce_flat_select(m, p, bytes), reduce_binomial(m, p, bytes));
}

inline double allgather_best_flat(Machine const& m, double p, double bytes) {
    double c = std::min(allgather_flat_select(m, p, bytes), allgather_ring(m, p, bytes));
    if (is_pow2_p(p)) c = std::min(c, allgather_rdoubling(m, p, bytes));
    return c;
}

inline double allreduce_best_flat(Machine const& m, double p, double bytes, bool commutative,
                                  bool elementwise) {
    double c = std::min(allreduce_flat_select(m, p, bytes), allreduce_binomial(m, p, bytes));
    if (is_pow2_p(p)) c = std::min(c, allreduce_rdoubling(m, p, bytes));
    if (commutative && elementwise) {
        c = std::min(c, allreduce_ring(m, p, bytes));
        if (is_pow2_p(p)) c = std::min(c, allreduce_rabenseifner(m, p, bytes));
    }
    return c;
}

inline double alltoall_best_flat(Machine const& m, double p, double block_bytes) {
    return std::min(alltoall_flat(m, p, block_bytes), alltoall_bruck(m, p, block_bytes));
}

/// Hierarchical bcast, pipelined variant: a segment-pipelined ring over the
/// node leaders with per-segment binomial relay into each node.
inline double bcast_hier_ring(TwoTier const& t, NodeShape const& s, double bytes) {
    double const n = s.nodes < 1 ? 1 : s.nodes;
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    double const nseg = ring_pipeline_segments(bytes);
    double const seg = bytes / nseg;
    return (n - 2 + nseg) * (t.inter.alpha + t.inter.o + t.inter.beta * seg) +
           ceil_log2(m) * (t.intra.alpha + t.intra.o + t.intra.beta * seg);
}

/// Hierarchical bcast, latency variant: a binomial tree among leaders
/// followed by intra-node binomial trees on the full payload.
inline double bcast_hier_tree(TwoTier const& t, NodeShape const& s, double bytes) {
    double const n = s.nodes < 1 ? 1 : s.nodes;
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    return ceil_log2(n) * (t.inter.alpha + t.inter.o + t.inter.beta * bytes) +
           ceil_log2(m) * (t.intra.alpha + t.intra.o + t.intra.beta * bytes);
}

// ---------------------------------------------------------------------------
// Zero-copy shared-memory phase costs. Each prices the copy-step schedules
// built by the shm variants in hierarchical.cpp: a producer publishes its
// buffer once (copy_sync), then consumers read it concurrently — p-1 readers
// of the same buffer overlap, so a share-back costs one sync plus one
// gamma_copy*bytes stream, not p-1 of them.
// ---------------------------------------------------------------------------

/// One buffer published, any number of same-node peers read it concurrently
/// (bcast share-back, leader-to-members redistribution).
inline double copy_share_back(TwoTier const& t, double bytes) {
    return t.copy_sync + t.gamma_copy * bytes;
}

/// One consumer reads k peer buffers back-to-back (gather into a leader,
/// reduce-scatter slice collection): the reads serialize on the consumer.
inline double copy_gather(TwoTier const& t, double k, double bytes) {
    return t.copy_sync + (k < 0 ? 0 : k) * t.gamma_copy * bytes;
}

/// In-place binomial tree reduce folding into the leader's accumulator:
/// ceil(log2 m) levels, each one rendezvous plus one direct read of the
/// full payload (the fold itself is compute, priced by the virtual clock).
inline double copy_tree_reduce(TwoTier const& t, double m, double bytes) {
    return ceil_log2(m) * (t.copy_sync + t.gamma_copy * bytes);
}

/// Hierarchical bcast, shm intra phases: the inter phase is unchanged; the
/// per-segment intra relay collapses to one publish + concurrent reads, and
/// only the last segment's share-back sits outside the ring's steady state.
inline double bcast_hier_ring_shm(TwoTier const& t, NodeShape const& s, double bytes) {
    double const n = s.nodes < 1 ? 1 : s.nodes;
    double const nseg = ring_pipeline_segments(bytes);
    double const seg = bytes / nseg;
    return (n - 2 + nseg) * (t.inter.alpha + t.inter.o + t.inter.beta * seg) +
           copy_share_back(t, seg);
}

inline double bcast_hier_tree_shm(TwoTier const& t, NodeShape const& s, double bytes) {
    double const n = s.nodes < 1 ? 1 : s.nodes;
    return ceil_log2(n) * (t.inter.alpha + t.inter.o + t.inter.beta * bytes) +
           copy_share_back(t, bytes);
}

/// Hierarchical bcast: the builder picks whichever variant is cheaper; with
/// the shm transport enabled the shm intra phases join the candidate set.
inline double bcast_hier(TwoTier const& t, NodeShape const& s, double /*p*/, double bytes,
                         bool shm = false) {
    double c = std::min(bcast_hier_ring(t, s, bytes), bcast_hier_tree(t, s, bytes));
    if (shm) {
        c = std::min({c, bcast_hier_ring_shm(t, s, bytes), bcast_hier_tree_shm(t, s, bytes)});
    }
    return c;
}

/// Hierarchical reduce: intra-node binomial reduce to the node leader, a
/// binomial reduce among leaders, and (worst case) one intra-node transfer
/// from the root node's leader to the root.
inline double reduce_hier(TwoTier const& t, NodeShape const& s, double /*p*/, double bytes,
                          bool shm = false) {
    double c = (ceil_log2(s.max_ppn) + 1) * (t.intra.alpha + t.intra.o + t.intra.beta * bytes) +
               ceil_log2(s.nodes) * (t.inter.alpha + t.inter.o + t.inter.beta * bytes);
    if (shm) {
        // In-place shm tree reduce into the leader, plus (worst case) one
        // shm transfer from the root node's leader to the root.
        double const c_shm = copy_tree_reduce(t, s.max_ppn, bytes) + copy_share_back(t, bytes) +
                             ceil_log2(s.nodes) * (t.inter.alpha + t.inter.o + t.inter.beta * bytes);
        c = std::min(c, c_shm);
    }
    return c;
}

/// Hierarchical allreduce, element-wise path ("2D"): a flat intra-node
/// reduce-scatter over S = min_ppn slices, S parallel inter-node allreduces
/// (slice peer groups, one member per node, best flat algorithm among n
/// ranks on bytes/S), and a flat intra-node share-back of the slices.
/// Non-element-wise operations fall back to the leader composition:
/// intra-node binomial reduce, best valid flat allreduce among leaders on
/// the full payload, intra-node binomial bcast.
inline double allreduce_hier(TwoTier const& t, NodeShape const& s, double /*p*/, double bytes,
                             bool commutative, bool elementwise, bool shm = false) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    if (elementwise) {
        double const S = s.min_ppn < 1 ? 1 : s.min_ppn;
        double const slice = bytes / S;
        double const intra_phase =
            (m - 1) * (t.intra.alpha + t.intra.o) + t.intra.beta * bytes;
        double c = 2 * intra_phase + allreduce_best_flat(t.inter, s.nodes, slice, true, true);
        if (shm) {
            // Phase A: every member publishes its input once, each slice
            // owner reads m-1 peer slices directly; phase C: owners publish
            // their result slice, every rank reads the m-1 it is missing.
            double const c_shm = 2 * copy_gather(t, m - 1, slice) +
                                 allreduce_best_flat(t.inter, s.nodes, slice, true, true);
            c = std::min(c, c_shm);
        }
        return c;
    }
    double c = ceil_log2(m) * (t.intra.alpha + t.intra.o + t.intra.beta * bytes) +
               allreduce_best_flat(t.inter, s.nodes, bytes, commutative, false) +
               ceil_log2(m) * (t.intra.alpha + t.intra.o + t.intra.beta * bytes);
    if (shm) {
        double const c_shm = copy_tree_reduce(t, m, bytes) +
                             allreduce_best_flat(t.inter, s.nodes, bytes, commutative, false) +
                             copy_share_back(t, bytes);
        c = std::min(c, c_shm);
    }
    return c;
}

/// Hierarchical allgather, unpipelined (`bytes` = one rank's block):
/// intra-node gather to the leader, a leader ring forwarding whole node
/// bundles, and an intra-node binomial bcast of the assembled result — each
/// phase completing before the next starts.
inline double allgather_hier_unpipelined(TwoTier const& t, NodeShape const& s, double p,
                                         double bytes) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    return (m - 1) * (t.intra.alpha + t.intra.o + t.intra.beta * bytes) +
           (s.nodes - 1) * (t.inter.alpha + t.inter.o + t.inter.beta * bytes * m) +
           ceil_log2(m) * (t.intra.alpha + t.intra.o + t.intra.beta * bytes * p);
}

/// Segment count of the pipelined hierarchical allgather for a per-rank
/// block of `bytes` (shared with the schedule builder): hides the intra
/// share-back bulk (log2(m) relay levels of p*bytes) behind the leader
/// ring, at (nodes-1) extra ring messages plus log2(m) relay hops per
/// segment.
inline double allgather_hier_segments(TwoTier const& t, NodeShape const& s, double p,
                                      double bytes) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    double const overlapped = ceil_log2(m) * t.intra.beta * bytes * p + t.intra.beta * bytes;
    double const alpha_seg = (s.nodes - 1) * (t.inter.alpha + t.inter.o) +
                             ceil_log2(m) * (t.intra.alpha + t.intra.o);
    return pipeline_segments(bytes, overlapped, alpha_seg);
}

/// Pipelined hierarchical allgather: the intra gather of segment k+1, the
/// leader-ring exchange of segment k and the intra share-back of segment
/// k-1 overlap, so only the first segment's gather and the last segment's
/// share-back sit outside the ring's steady state.
inline double allgather_hier_pipelined(TwoTier const& t, NodeShape const& s, double p,
                                       double bytes) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    double const nseg = allgather_hier_segments(t, s, p, bytes);
    double const seg = bytes / nseg;
    return (t.intra.alpha + t.intra.o + t.intra.beta * seg) +
           (s.nodes - 1) * (nseg * (t.inter.alpha + t.inter.o) + t.inter.beta * bytes * m) +
           ceil_log2(m) * (t.intra.alpha + t.intra.o + t.intra.beta * seg * p);
}

/// Hierarchical allgather, shm leader composition (any node shape): members
/// publish their blocks and the leader reads them directly (phase A), the
/// leader ring forwards whole node bundles (unchanged), and the leader
/// publishes the assembled result for concurrent member reads (phase C).
inline double allgather_hier_leader_shm(TwoTier const& t, NodeShape const& s, double p,
                                        double bytes) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    return copy_gather(t, m - 1, bytes) +
           (s.nodes - 1) * (t.inter.alpha + t.inter.o + t.inter.beta * bytes * m) +
           copy_share_back(t, bytes * p);
}

/// Hierarchical allgather, shm "2D" composition (uniform node shapes only:
/// min_ppn == max_ppn == m): m concurrent inter-node rings — one per member
/// index, one member per node — each forwarding single blocks of `bytes`
/// directly into final recvbuf offsets, then every rank reads the
/// (m-1)*nodes blocks it is missing straight out of its same-node peers'
/// recvbufs. The inter phase moves bytes per hop instead of the leader
/// ring's m*bytes, which is where the win comes from.
inline double allgather_hier_shm2d(TwoTier const& t, NodeShape const& s, double p,
                                   double bytes) {
    (void)p;
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    return (s.nodes - 1) * (t.inter.alpha + t.inter.o + t.inter.beta * bytes) +
           (m - 1) * t.copy_sync + (m - 1) * s.nodes * t.gamma_copy * bytes;
}

/// Hierarchical allgather: whichever of the unpipelined, segment-pipelined
/// and (when the shm transport is enabled) shm compositions is cheapest
/// (the builder makes the same choice). The 2D shm variant requires a
/// uniform node shape.
inline double allgather_hier(TwoTier const& t, NodeShape const& s, double p, double bytes,
                             bool shm = false) {
    double c = std::min(allgather_hier_unpipelined(t, s, p, bytes),
                        allgather_hier_pipelined(t, s, p, bytes));
    if (shm) {
        c = std::min(c, allgather_hier_leader_shm(t, s, p, bytes));
        if (s.min_ppn == s.max_ppn) c = std::min(c, allgather_hier_shm2d(t, s, p, bytes));
    }
    return c;
}

/// Hierarchical alltoall (`bytes` = one per-destination block): members ship
/// their full row to the leader, leaders exchange per-node-pair bundles
/// pairwise, leaders ship reassembled rows back. Aggregation trades
/// bandwidth (the leader carries its node's whole traffic) for messages
/// (n-1 network messages instead of p-ppn), so this wins in the
/// latency-bound regime.
inline double alltoall_hier_unpipelined(TwoTier const& t, NodeShape const& s, double p,
                                        double bytes) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    double const row = bytes * p;
    return 2 * ((m - 1) * (t.intra.alpha + t.intra.o) + t.intra.beta * row * m) +
           (s.nodes - 1) * (t.inter.alpha + t.inter.o) + t.inter.beta * m * (p - m) * bytes;
}

/// Segment count of the pipelined hierarchical alltoall for a per-
/// destination block of `bytes` (shared with the schedule builder): hides
/// the intra row shipping (up and back, m rows of p*bytes each through the
/// leader) behind the pairwise bundle exchange, at (nodes-1) extra network
/// messages per segment.
inline double alltoall_hier_segments(TwoTier const& t, NodeShape const& s, double p,
                                     double bytes) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    double const row = bytes * p;
    double const overlapped = 2 * t.intra.beta * row * m;
    double const alpha_seg = (s.nodes - 1) * (t.inter.alpha + t.inter.o);
    return pipeline_segments(bytes, overlapped, alpha_seg);
}

/// Pipelined hierarchical alltoall: row segments flow up, across and back
/// concurrently, so only one segment's worth of intra shipping sits outside
/// the inter-node exchange's steady state.
inline double alltoall_hier_pipelined(TwoTier const& t, NodeShape const& s, double p,
                                      double bytes) {
    double const m = s.max_ppn < 1 ? 1 : s.max_ppn;
    double const row = bytes * p;
    double const nseg = alltoall_hier_segments(t, s, p, bytes);
    return 2 * ((m - 1) * (t.intra.alpha + t.intra.o) + t.intra.beta * row * m / nseg) +
           (s.nodes - 1) * nseg * (t.inter.alpha + t.inter.o) +
           t.inter.beta * m * (p - m) * bytes;
}

/// Hierarchical alltoall: cheaper of the unpipelined and segment-pipelined
/// compositions (the builder makes the same choice).
inline double alltoall_hier(TwoTier const& t, NodeShape const& s, double p, double bytes) {
    return std::min(alltoall_hier_unpipelined(t, s, p, bytes),
                    alltoall_hier_pipelined(t, s, p, bytes));
}

/// Fig. 8: sample sort of n elements/rank of `elem_bytes` each.
/// Phases: local sample + allgatherv of samples, local sort, pairwise
/// alltoallv of all data, final merge/sort.
inline double sample_sort(Machine const& m, double p, double n, double elem_bytes) {
    double const samples = 16 * log2d(p) + 1;
    double const sort_local = n * log2d(std::max(2.0, n)) / m.compute_rate;
    return allgather(m, p, samples * elem_bytes)       // sample exchange
           + samples * p * log2d(samples * p) / m.compute_rate  // sort samples
           + sort_local                                 // local sort
           + alltoallv(m, p, n * elem_bytes)            // bucket exchange
           + sort_local;                                // final sort
}

/// Fig. 10: one BFS level exchanging `frontier_bytes` to `partners` ranks,
/// for each exchange algorithm. A full BFS is the sum over its levels; for
/// the shape comparison we report the per-level cost times the expected
/// number of levels (diameter).
struct BfsLevel {
    double alltoallv;
    double neighbor;
    double sparse;
    double grid;
};

inline BfsLevel bfs_level(Machine const& m, double p, double partners, double frontier_bytes) {
    BfsLevel r{};
    r.alltoallv = alltoallv(m, p, frontier_bytes) + allreduce_small(m, p);
    r.neighbor = neighbor_alltoallv(m, partners, frontier_bytes) + allreduce_small(m, p);
    r.sparse = sparse_alltoallv(m, p, partners, frontier_bytes) + allreduce_small(m, p);
    r.grid = grid_alltoallv(m, p, frontier_bytes) + allreduce_small(m, p);
    return r;
}

}  // namespace bench::model
