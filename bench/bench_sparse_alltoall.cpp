/// @file bench_sparse_alltoall.cpp
/// @brief Regenerates the §V-A sparse-exchange comparison: latency of a
/// k-neighbor personalized exchange via (a) dense MPI_Alltoallv — linear in
/// p, (b) the NBX sparse plugin — O(log p + k), (c) neighborhood collectives
/// on a static topology, and (d) neighborhood collectives when the graph
/// topology is rebuilt before every exchange (dynamic patterns).
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "kamping/kamping.hpp"
#include "kamping/plugins/sparse_alltoall.hpp"
#include "xmpi/xmpi.hpp"

namespace {

using SparseComm = kamping::CommunicatorWith<kamping::plugin::SparseAlltoall>;

constexpr int kReps = 6;
constexpr int kPayload = 16;  // elements per neighbor message

struct Times {
    double dense = 0, sparse = 0, neighbor = 0, neighbor_rebuild = 0;
};

Times measure(int p, int degree) {
    Times times;
    xmpi::run(p, [&, p, degree](int rank) {
        using namespace kamping;
        SparseComm comm;
        // k-regular ring-like pattern: rank r talks to r+1 .. r+degree.
        std::unordered_map<int, std::vector<std::uint64_t>> messages;
        std::vector<int> partners_out, partners_in;
        for (int d = 1; d <= degree; ++d) {
            int const to = (rank + d) % p;
            messages[to].assign(kPayload, static_cast<std::uint64_t>(rank));
            partners_out.push_back(to);
            partners_in.push_back((rank - d + p) % p);
        }

        // (a) dense alltoallv
        std::vector<std::uint64_t> flat;
        std::vector<int> counts(static_cast<std::size_t>(p), 0);
        for (int d = 1; d <= degree; ++d) counts[static_cast<std::size_t>((rank + d) % p)] = kPayload;
        for (int i = 0; i < p; ++i) {
            if (counts[static_cast<std::size_t>(i)] > 0)
                flat.insert(flat.end(), kPayload, static_cast<std::uint64_t>(rank));
        }
        double t0 = xmpi::vtime_now();
        for (int i = 0; i < kReps; ++i) {
            auto r = comm.alltoallv(send_buf(flat), send_counts(counts));
            (void)r;
        }
        double t1 = xmpi::vtime_now();
        if (rank == 0) times.dense = (t1 - t0) / kReps;

        // (b) NBX sparse
        t0 = xmpi::vtime_now();
        for (int i = 0; i < kReps; ++i) {
            comm.alltoallv_sparse(messages, [](int, std::vector<std::uint64_t>&&) {});
        }
        t1 = xmpi::vtime_now();
        if (rank == 0) times.sparse = (t1 - t0) / kReps;

        // (c) neighborhood collective, static topology
        MPI_Comm graph_comm = MPI_COMM_NULL;
        MPI_Dist_graph_create_adjacent(MPI_COMM_WORLD, degree, partners_in.data(), nullptr, degree,
                                       partners_out.data(), nullptr, MPI_INFO_NULL, 0,
                                       &graph_comm);
        std::vector<std::uint64_t> nsend(static_cast<std::size_t>(degree) * kPayload,
                                         static_cast<std::uint64_t>(rank));
        std::vector<std::uint64_t> nrecv(nsend.size());
        t0 = xmpi::vtime_now();
        for (int i = 0; i < kReps; ++i) {
            MPI_Neighbor_alltoall(nsend.data(), kPayload, MPI_UINT64_T, nrecv.data(), kPayload,
                                  MPI_UINT64_T, graph_comm);
        }
        t1 = xmpi::vtime_now();
        if (rank == 0) times.neighbor = (t1 - t0) / kReps;
        MPI_Comm_free(&graph_comm);

        // (d) neighborhood collective with per-exchange topology rebuild
        t0 = xmpi::vtime_now();
        for (int i = 0; i < kReps; ++i) {
            MPI_Comm gc = MPI_COMM_NULL;
            MPI_Dist_graph_create_adjacent(MPI_COMM_WORLD, degree, partners_in.data(), nullptr,
                                           degree, partners_out.data(), nullptr, MPI_INFO_NULL, 0,
                                           &gc);
            MPI_Neighbor_alltoall(nsend.data(), kPayload, MPI_UINT64_T, nrecv.data(), kPayload,
                                  MPI_UINT64_T, gc);
            MPI_Comm_free(&gc);
        }
        t1 = xmpi::vtime_now();
        if (rank == 0) times.neighbor_rebuild = (t1 - t0) / kReps;
    });
    return times;
}

}  // namespace

int main() {
    std::printf("=== §V-A: sparse personalized exchange latency (modeled, %d x uint64 per "
                "neighbor) ===\n",
                kPayload);
    std::printf("%4s %7s %12s %12s %12s %16s\n", "p", "degree", "dense[us]", "nbx[us]",
                "neighbor[us]", "nbr_rebuild[us]");
    for (int p : {8, 16, 32}) {
        for (int degree : {1, 2, 4, 8}) {
            if (degree >= p) continue;
            auto const t = measure(p, degree);
            std::printf("%4d %7d %12.2f %12.2f %12.2f %16.2f\n", p, degree, t.dense * 1e6,
                        t.sparse * 1e6, t.neighbor * 1e6, t.neighbor_rebuild * 1e6);
        }
    }
    std::printf(
        "\nShape check: dense grows ~linearly in p for fixed degree; NBX ~ log p + degree and is\n"
        "only slightly slower than the static neighborhood collective; rebuilding the topology\n"
        "before every exchange erases the neighborhood advantage (paper Fig. 10 discussion).\n");
    return 0;
}
