/// @file quickstart.cpp
/// @brief Tour of the KaMPIng-style API (paper Fig. 1): sensible defaults,
/// named parameters, out-parameters with structured bindings, in-place
/// calls, reductions with STL functors and lambdas, and non-blocking safety.
///
/// The program runs 4 MPI ranks inside this process (threads-as-ranks; see
/// DESIGN.md) — no mpirun needed.
#include <cstdio>
#include <numeric>
#include <vector>

#include "kamping/kamping.hpp"
#include "xmpi/xmpi.hpp"

int main() {
    using namespace kamping;
    auto result = xmpi::run(4, [](int rank) {
        Communicator comm;

        // (1) The one-liner from the paper's Fig. 1: allgather a vector of
        // varying size; counts, displacements and buffer sizing inferred.
        std::vector<double> v(static_cast<std::size_t>(rank) + 1, rank + 0.5);
        auto v_global = comm.allgatherv(send_buf(v));

        // (2) Full control: request the receive counts and displacements as
        // out-parameters and decompose the result with structured bindings.
        std::vector<int> rc;
        auto [v_global2, rcounts, rdispls] = comm.allgatherv(
            send_buf(v), recv_counts_out<resize_to_fit>(std::move(rc)), recv_displs_out());

        // (3) In-place allgather with move semantics (paper §III-G).
        std::vector<int> table(comm.size());
        table[comm.rank()] = rank * rank;
        table = comm.allgather(send_recv_buf(std::move(table)));

        // (4) Reductions: STL functors map to MPI built-ins, lambdas become
        // custom operations.
        int const sum = comm.allreduce_single(send_buf(rank + 1), op(std::plus<>{}));
        int const weird = comm.allreduce_single(
            send_buf(rank + 1), op([](int a, int b) { return a ^ b; }, ops::commutative));

        // (5) Non-blocking safety (paper Fig. 6): the moved-in buffer is
        // inaccessible until the operation completed; wait() hands it back.
        std::vector<int> payload{rank, rank + 10};
        auto r1 = comm.isend(send_buf_out(std::move(payload)), destination((rank + 1) % 4), tag(1));
        auto r2 = comm.irecv<int>(recv_count(2), source((rank + 3) % 4), tag(1));
        std::vector<int> received = r2.wait();
        payload = r1.wait();  // moved back to the caller after completion

        if (rank == 0) {
            std::printf("quickstart: global vector has %zu elements\n", v_global.size());
            std::printf("quickstart: recv_counts =");
            for (int c : rcounts) std::printf(" %d", c);
            std::printf("; displs[3] = %d\n", rdispls[3]);
            std::printf("quickstart: allgathered squares:");
            for (int t : table) std::printf(" %d", t);
            std::printf("\nquickstart: sum(1..4) = %d, xor-reduce = %d\n", sum, weird);
            std::printf("quickstart: got {%d, %d} from rank 3\n", received[0], received[1]);
        }
    });
    std::printf("quickstart: modeled parallel time %.2f us, %llu messages\n",
                result.max_vtime * 1e6,
                static_cast<unsigned long long>(result.total.p2p_messages +
                                                result.total.coll_messages));
    return 0;
}
