/// @file nonblocking_overlap.cpp
/// @brief Iteration-loop collectives three ways: blocking allreduce
/// (communication and compute serialize), the nonblocking `iallreduce`
/// (communication overlaps the independent work), and the persistent
/// `allreduce_init` handle (same overlap, but algorithm selection and
/// schedule construction happen once before the loop — every iteration
/// merely start()s the frozen schedule). The substrate's virtual-time cost
/// model prices the communication schedules, so the printed makespans show
/// the overlap win independent of host scheduling; the persistent variant
/// additionally reports the measured per-iteration initiation CPU time the
/// amortized schedule saves.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "kamping/kamping.hpp"
#include "xmpi/xmpi.hpp"

namespace {

constexpr int kRanks = 8;
constexpr int kIters = 20;
constexpr std::size_t kElems = 1 << 14;
/// Modeled independent work per iteration (virtual seconds).
constexpr double kComputeSeconds = 500e-6;

/// Commodity-ethernet-class interconnect: overlap pays off when the network
/// latency/bandwidth terms dominate the local copy costs (on the default
/// OmniPath-class parameters the packing CPU time does instead).
xmpi::Config network() {
    xmpi::Config cfg;
    cfg.alpha = 50e-6;
    cfg.beta = 1e-8;
    return cfg;
}

enum class Variant { blocking, overlap, persistent };

struct PipelineResult {
    double makespan;       ///< modeled (virtual-time) makespan, seconds
    double init_cpu_rank0; ///< rank 0 wall time spent initiating collectives
};

PipelineResult pipeline(Variant variant) {
    PipelineResult out{0.0, 0.0};
    auto result = xmpi::run(kRanks, [variant, &out](int rank) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> data(kElems, static_cast<std::uint64_t>(rank));
        double init_cpu = 0.0;
        auto timed = [&init_cpu](auto&& fn) -> decltype(auto) {
            auto const t0 = std::chrono::steady_clock::now();
            decltype(auto) r = fn();
            init_cpu += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                            .count();
            return r;
        };
        if (variant == Variant::persistent) {
            // Selection + schedule construction once, outside the loop.
            auto handle = comm.allreduce_init(send_buf(data), op(std::plus<>{}));
            for (int it = 0; it < kIters; ++it) {
                timed([&] { handle.start(); return 0; });
                xmpi::vtime_add(kComputeSeconds);  // work independent of the reduction
                auto const& reduced = handle.wait();
                data[0] = reduced[0] & 0xff;
            }
        } else {
            for (int it = 0; it < kIters; ++it) {
                if (variant == Variant::overlap) {
                    auto pending = timed(
                        [&] { return comm.iallreduce(send_buf(data), op(std::plus<>{})); });
                    xmpi::vtime_add(kComputeSeconds);
                    auto reduced = pending.wait();
                    data[0] = reduced[0] & 0xff;
                } else {
                    auto reduced = comm.allreduce(send_buf(data), op(std::plus<>{}));
                    xmpi::vtime_add(kComputeSeconds);
                    data[0] = reduced[0] & 0xff;
                }
            }
        }
        if (rank == 0) out.init_cpu_rank0 = init_cpu;
    }, network());
    out.makespan = result.max_vtime;
    return out;
}

}  // namespace

int main() {
    std::printf("nonblocking_overlap: %d ranks, %d iterations, %zu elements, %.0f us compute\n",
                kRanks, kIters, kElems, kComputeSeconds * 1e6);
    auto const blocking = pipeline(Variant::blocking);
    auto const overlapped = pipeline(Variant::overlap);
    auto const persistent = pipeline(Variant::persistent);
    std::printf("  blocking   allreduce + compute: %8.3f ms modeled makespan\n",
                blocking.makespan * 1e3);
    std::printf("  iallreduce overlapped compute:  %8.3f ms modeled makespan"
                " (%.1f us/iter to build+start each schedule)\n",
                overlapped.makespan * 1e3, overlapped.init_cpu_rank0 / kIters * 1e6);
    std::printf("  persistent overlapped compute:  %8.3f ms modeled makespan"
                " (%.1f us/iter to start the frozen schedule)\n",
                persistent.makespan * 1e3, persistent.init_cpu_rank0 / kIters * 1e6);
    std::printf("  overlap win: %.2fx (persistent matches, with amortized initiation)\n",
                blocking.makespan / overlapped.makespan);
    return 0;
}
