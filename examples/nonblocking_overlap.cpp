/// @file nonblocking_overlap.cpp
/// @brief Communication/computation overlap with the nonblocking collective
/// i-variants: a pipeline of allreduce + independent local work, once with
/// the blocking collective (communication and compute serialize) and once
/// with `iallreduce` started before the work and harvested after it. The
/// substrate's virtual-time cost model prices both schedules, so the printed
/// makespans show the overlap win independent of host scheduling.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "kamping/kamping.hpp"
#include "xmpi/xmpi.hpp"

namespace {

constexpr int kRanks = 8;
constexpr int kIters = 20;
constexpr std::size_t kElems = 1 << 14;
/// Modeled independent work per iteration (virtual seconds).
constexpr double kComputeSeconds = 500e-6;

/// Commodity-ethernet-class interconnect: overlap pays off when the network
/// latency/bandwidth terms dominate the local copy costs (on the default
/// OmniPath-class parameters the packing CPU time does instead).
xmpi::Config network() {
    xmpi::Config cfg;
    cfg.alpha = 50e-6;
    cfg.beta = 1e-8;
    return cfg;
}

double pipeline(bool overlap) {
    auto result = xmpi::run(kRanks, [overlap](int rank) {
        using namespace kamping;
        Communicator comm;
        std::vector<std::uint64_t> data(kElems, static_cast<std::uint64_t>(rank));
        for (int it = 0; it < kIters; ++it) {
            if (overlap) {
                auto pending = comm.iallreduce(send_buf(data), op(std::plus<>{}));
                xmpi::vtime_add(kComputeSeconds);  // work independent of the reduction
                auto reduced = pending.wait();
                data[0] = reduced[0] & 0xff;
            } else {
                auto reduced = comm.allreduce(send_buf(data), op(std::plus<>{}));
                xmpi::vtime_add(kComputeSeconds);
                data[0] = reduced[0] & 0xff;
            }
        }
    }, network());
    return result.max_vtime;
}

}  // namespace

int main() {
    std::printf("nonblocking_overlap: %d ranks, %d iterations, %zu elements, %.0f us compute\n",
                kRanks, kIters, kElems, kComputeSeconds * 1e6);
    double const blocking = pipeline(false);
    double const overlapped = pipeline(true);
    std::printf("  blocking   allreduce + compute: %8.3f ms modeled makespan\n", blocking * 1e3);
    std::printf("  iallreduce overlapped compute:  %8.3f ms modeled makespan\n", overlapped * 1e3);
    std::printf("  overlap win: %.2fx\n", blocking / overlapped);
    return 0;
}
