/// @file bfs_exploration.cpp
/// @brief Distributed BFS (paper Fig. 9/10) over the three generated graph
/// families, comparing the exchange strategies: built-in alltoallv, sparse
/// NBX, 2D grid and neighborhood collectives.
#include <cstdio>
#include <vector>

#include "apps/bfs/bfs_kamping.hpp"
#include "apps/bfs/bfs_mpi.hpp"
#include "apps/bfs/bfs_variants.hpp"
#include "kagen/kagen.hpp"
#include "xmpi/xmpi.hpp"

namespace {

template <typename BfsFn>
void run_bfs(char const* graph, char const* variant, BfsFn fn, int p) {
    auto result = xmpi::run(p, [&](int) {
        kamping::Communicator comm;
        kagen::Graph g;
        if (graph[0] == 'g') {
            g = kagen::generate_gnm(comm, 1 << 10, 1 << 12, 42);
        } else if (graph[0] == 'r') {
            g = kagen::generate_rgg2d(comm, 1 << 10, 8.0, 42);
        } else {
            g = kagen::generate_plg(comm, 1 << 10, 1 << 12, 2.8, 42);
        }
        double const t0 = xmpi::vtime_now();
        auto dist = fn(g, 0, MPI_COMM_WORLD);
        double const t1 = xmpi::vtime_now();
        std::size_t reached = 0;
        for (auto d : dist) reached += d != apps::bfs::undef ? 1 : 0;
        if (comm.rank() == 0) {
            std::printf("  %-6s %-16s bfs time %8.3f ms, %5zu/%u local vertices reached\n", graph,
                        variant, (t1 - t0) * 1e3, reached, 1u << 10);
        }
    });
    (void)result;
}

}  // namespace

int main() {
    int const p = 8;
    std::printf("bfs_exploration: 2^10 vertices per rank on %d ranks\n", p);
    for (char const* graph : {"gnm", "rgg2d", "plg"}) {
        run_bfs(graph, "alltoallv", &apps::bfs::mpi::bfs, p);
        run_bfs(graph, "kamping", &apps::bfs::kamping_impl::bfs, p);
        run_bfs(graph, "sparse(nbx)", &apps::bfs::kamping_sparse::bfs, p);
        run_bfs(graph, "overlap", &apps::bfs::kamping_overlap::bfs, p);
        run_bfs(graph, "persist", &apps::bfs::kamping_persistent::bfs, p);
        run_bfs(graph, "grid", &apps::bfs::kamping_grid::bfs, p);
        run_bfs(graph, "neighbor", [](auto const& g, auto s, MPI_Comm c) {
            return apps::bfs::mpi_neighbor::bfs(g, s, c, false);
        }, p);
    }
    return 0;
}
