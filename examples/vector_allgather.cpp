/// @file vector_allgather.cpp
/// @brief The paper's running example (Fig. 2 / Fig. 3): gradually migrating
/// a hand-written MPI vector allgather to KaMPIng, printing the three
/// versions' results to show they are identical.
#include <cstdio>
#include <numeric>
#include <vector>

#include "kamping/kamping.hpp"
#include "xmpi/xmpi.hpp"

namespace {

using T = long;

/// Fig. 2: plain MPI. Fourteen lines of boilerplate.
std::vector<T> version_mpi(std::vector<T> const& v, MPI_Comm comm) {
    int size = 0, rank = 0;
    MPI_Comm_size(comm, &size);
    MPI_Comm_rank(comm, &rank);
    std::vector<int> rc(static_cast<std::size_t>(size)), rd(static_cast<std::size_t>(size));
    rc[static_cast<std::size_t>(rank)] = static_cast<int>(v.size());
    MPI_Allgather(MPI_IN_PLACE, 0, MPI_DATATYPE_NULL, rc.data(), 1, MPI_INT, comm);
    std::exclusive_scan(rc.begin(), rc.end(), rd.begin(), 0);
    int const n_glob = rc.back() + rd.back();
    std::vector<T> v_glob(static_cast<std::size_t>(n_glob));
    MPI_Allgatherv(v.data(), static_cast<int>(v.size()), MPI_LONG, v_glob.data(), rc.data(),
                   rd.data(), MPI_LONG, comm);
    return v_glob;
}

/// Fig. 3 Version 2: counts provided, displacements computed implicitly.
std::vector<T> version_partial(std::vector<T> const& v, kamping::Communicator const& comm) {
    using namespace kamping;
    std::vector<int> rc(comm.size());
    rc[comm.rank()] = static_cast<int>(v.size());
    comm.allgather(send_recv_buf(rc));
    std::vector<T> v_glob;
    comm.allgatherv(send_buf(v), recv_buf<resize_to_fit>(v_glob), recv_counts(rc));
    return v_glob;
}

/// Fig. 3 Version 3: counts exchanged automatically, returned by value.
std::vector<T> version_kamping(std::vector<T> const& v, kamping::Communicator const& comm) {
    return comm.allgatherv(kamping::send_buf(v));
}

}  // namespace

int main() {
    xmpi::run(4, [](int rank) {
        kamping::Communicator comm;
        std::vector<T> v(static_cast<std::size_t>(rank + 1));
        std::iota(v.begin(), v.end(), 10L * rank);

        auto const a = version_mpi(v, MPI_COMM_WORLD);
        auto const b = version_partial(v, comm);
        auto const c = version_kamping(v, comm);

        if (rank == 0) {
            std::printf("vector_allgather: %zu global elements\n", a.size());
            std::printf("all versions identical: %s\n", (a == b && b == c) ? "yes" : "NO!");
            std::printf("global vector:");
            for (T x : c) std::printf(" %ld", x);
            std::printf("\n");
        }
    });
    return 0;
}
