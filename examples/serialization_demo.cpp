/// @file serialization_demo.cpp
/// @brief Transparent, explicit serialization (paper §III-D3, Fig. 5):
/// sending a std::unordered_map over MPI with as_serialized /
/// as_deserializable, plus the RAxML-NG-style serialized broadcast of a
/// model object with heap members (paper Fig. 11).
#include <cstdio>
#include <string>
#include <unordered_map>

#include "apps/raxml_lite/raxml_lite.hpp"
#include "kamping/kamping.hpp"
#include "xmpi/xmpi.hpp"

int main() {
    using namespace kamping;
    using dict = std::unordered_map<std::string, std::string>;

    xmpi::run(3, [](int rank) {
        Communicator comm;

        // Paper Fig. 5: heap-allocated, non-contiguous data over MPI.
        if (rank == 0) {
            dict data{{"tool", "kamping"}, {"venue", "SC24"}, {"feature", "serialization"}};
            comm.send(send_buf(as_serialized(data)), destination(1));
        } else if (rank == 1) {
            dict recv_dict = comm.recv(recv_buf(as_deserializable<dict>()));
            std::printf("rank 1 received a dict with %zu entries; tool=%s\n", recv_dict.size(),
                        recv_dict["tool"].c_str());
        }

        // Paper Fig. 11: broadcasting a model object in one line.
        apps::raxml_lite::Model model;
        if (rank == 0) {
            model.alpha = 2.5;
            model.options["speed"] = 11.0;
        }
        comm.bcast(send_recv_buf(as_serialized(model)));
        if (rank == 2) {
            std::printf("rank 2 received model: alpha=%.1f, options[speed]=%.1f\n", model.alpha,
                        model.options["speed"]);
        }
    });
    return 0;
}
