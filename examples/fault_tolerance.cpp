/// @file fault_tolerance.cpp
/// @brief ULFM fault tolerance via the plugin (paper §V-B, Fig. 12): a rank
/// is killed mid-computation; the survivors catch the failure as a C++
/// exception, revoke the communicator, shrink it and finish the job.
#include <cstdio>
#include <numeric>
#include <vector>

#include "kamping/kamping.hpp"
#include "kamping/plugins/ulfm.hpp"
#include "xmpi/xmpi.hpp"

int main() {
    using namespace kamping;
    using FtComm = CommunicatorWith<plugin::UserLevelFailureMitigation>;

    xmpi::run(6, [](int rank) {
        FtComm comm;
        // Iterative computation: sum partial results every round.
        long total = 0;
        for (int round = 0; round < 5; ++round) {
            if (rank == 3 && round == 2) {
                std::printf("rank 3: simulating hardware failure in round 2\n");
                XMPI_Die();
            }
            try {
                total = comm.allreduce_single(send_buf(static_cast<long>(rank + round)),
                                              op(std::plus<>{}));
            } catch ([[maybe_unused]] MpiErrorException const& e) {
                if (!comm.is_revoked()) {
                    comm.revoke();
                }
                // Create a new communicator containing only the survivors
                // (paper Fig. 12) and redo the round. Survivors may observe
                // the failure in *different* rounds (a lagging rank catches
                // the revocation inside an earlier collective), so they must
                // first agree on the earliest round to resume from — else
                // their post-recovery collective sequences diverge and the
                // last rounds deadlock.
                comm = comm.shrink();
                round = comm.allreduce_single(send_buf(round), op(ops::min{}));
                total = comm.allreduce_single(send_buf(static_cast<long>(rank + round)),
                                              op(std::plus<>{}));
                if (comm.is_root()) {
                    std::printf("recovered: %zu survivors continue (round %d redone, sum=%ld)\n",
                                comm.size(), round, total);
                }
            }
        }
        if (comm.is_root()) {
            std::printf("final round sum across %zu ranks: %ld\n", comm.size(), total);
        }
    });
    return 0;
}
