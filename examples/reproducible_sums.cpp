/// @file reproducible_sums.cpp
/// @brief Reproducible reduction (paper §V-C): the same global array summed
/// on 1, 3, 4 and 8 ranks gives bitwise-identical results, while a plain
/// MPI_Allreduce does not.
#include <bit>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "kamping/kamping.hpp"
#include "kamping/plugins/reproducible_reduce.hpp"
#include "xmpi/xmpi.hpp"

namespace {

using ReproComm = kamping::CommunicatorWith<kamping::plugin::ReproducibleReduce>;

std::vector<double> make_adversarial_input(std::size_t n) {
    std::mt19937_64 gen(2024);
    std::uniform_real_distribution<double> mag(-28, 28);
    std::vector<double> v(n);
    for (auto& x : v) x = std::ldexp(1.0 + mag(gen) / 60.0, static_cast<int>(mag(gen)));
    return v;
}

std::pair<double, double> sum_with(std::vector<double> const& global, int p) {
    double repro = 0, plain = 0;
    xmpi::run(p, [&, p](int rank) {
        ReproComm comm;
        std::size_t const chunk = (global.size() + static_cast<std::size_t>(p) - 1) /
                                  static_cast<std::size_t>(p);
        std::size_t const b = std::min(global.size(), chunk * static_cast<std::size_t>(rank));
        std::size_t const e = std::min(global.size(), b + chunk);
        std::vector<double> local(global.begin() + static_cast<std::ptrdiff_t>(b),
                                  global.begin() + static_cast<std::ptrdiff_t>(e));
        double const r = comm.reproducible_reduce(local);
        double partial = 0;
        for (double x : local) partial += x;
        double const q =
            comm.allreduce_single(kamping::send_buf(partial), kamping::op(std::plus<>{}));
        if (rank == 0) {
            repro = r;
            plain = q;
        }
    });
    return {repro, plain};
}

}  // namespace

int main() {
    auto const input = make_adversarial_input(100000);
    std::printf("reproducible_sums: summing 1e5 adversarial doubles\n");
    std::printf("%4s  %-22s  %-22s\n", "p", "reproducible_reduce", "plain allreduce");
    double repro1 = 0;
    for (int p : {1, 3, 4, 8}) {
        auto const [repro, plain] = sum_with(input, p);
        if (p == 1) repro1 = repro;
        std::printf("%4d  %.17e%s  %.17e\n", p, repro,
                    std::bit_cast<std::uint64_t>(repro) == std::bit_cast<std::uint64_t>(repro1)
                        ? " (=p1)"
                        : " (DIFFERS)",
                    plain);
    }
    return 0;
}
