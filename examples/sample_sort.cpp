/// @file sample_sort.cpp
/// @brief Distributed sample sort (paper Fig. 7) across all five binding
/// implementations, verifying they agree and reporting the modeled parallel
/// time of each.
#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "apps/sample_sort/sort_boost.hpp"
#include "apps/sample_sort/sort_kamping.hpp"
#include "apps/sample_sort/sort_mpi.hpp"
#include "apps/sample_sort/sort_mpl.hpp"
#include "apps/sample_sort/sort_rwth.hpp"
#include "xmpi/xmpi.hpp"

namespace {

using T = std::uint64_t;
using SortFn = void (*)(std::vector<T>&, MPI_Comm);

double run_sort(char const* name, SortFn fn, int p, std::size_t n_per_rank) {
    auto result = xmpi::run(p, [&](int rank) {
        std::mt19937_64 gen(1000 + static_cast<unsigned>(rank));
        std::vector<T> data(n_per_rank);
        for (auto& v : data) v = gen();
        double const t0 = xmpi::vtime_now();
        fn(data, MPI_COMM_WORLD);
        double const t1 = xmpi::vtime_now();
        if (!std::is_sorted(data.begin(), data.end())) std::printf("%s: NOT SORTED!\n", name);
        (void)t0;
        (void)t1;
    });
    std::printf("  %-10s modeled time %8.3f ms  (%6llu messages)\n", name,
                result.max_vtime * 1e3,
                static_cast<unsigned long long>(result.total.p2p_messages +
                                                result.total.coll_messages));
    return result.max_vtime;
}

}  // namespace

int main() {
    int const p = 8;
    std::size_t const n = 100000;
    std::printf("sample_sort: %zu uint64 per rank on %d ranks\n", n, p);
    run_sort("mpi", &apps::mpi::sort<T>, p, n);
    run_sort("kamping", &apps::kamping_impl::sort<T>, p, n);
    run_sort("boost", &apps::boost_impl::sort<T>, p, n);
    run_sort("mpl", &apps::mpl_impl::sort<T>, p, n);
    run_sort("rwth", &apps::rwth_impl::sort<T>, p, n);
    return 0;
}
